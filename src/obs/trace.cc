#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace parbox::obs {

TraceContext& CurrentTraceContext() {
  thread_local TraceContext current;
  return current;
}

Tracer::Tracer() : Tracer(Options()) {}

Tracer::Tracer(const Options& options)
    : enabled_(options.enabled), max_events_(options.max_events) {}

void Tracer::Record(TraceEvent event) {
  if (recorded_.fetch_add(1, std::memory_order_relaxed) >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shards_.Local().events.push_back(std::move(event));
}

namespace {
thread_local const char* g_next_compute_name = nullptr;
}  // namespace

void Tracer::SetNextComputeName(const char* name) {
  g_next_compute_name = name;
}

const char* Tracer::TakeNextComputeName() {
  const char* name = g_next_compute_name;
  g_next_compute_name = nullptr;
  return name;
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> all;
  shards_.ForEach([&](const Shard& shard) {
    all.insert(all.end(), shard.events.begin(), shard.events.end());
  });
  return all;
}

size_t Tracer::event_count() const {
  size_t n = 0;
  shards_.ForEach([&](const Shard& shard) { n += shard.events.size(); });
  return n;
}

void Tracer::Reset() {
  shards_.Clear();
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

/// Microseconds with fixed sub-microsecond precision: deterministic
/// for deterministic inputs (the golden-trace contract).
std::string Micros(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (c == '\n') {
      *out += "\\n";
      continue;
    }
    out->push_back(c);
  }
}

void AppendEventJson(std::string* out, const TraceEvent& e) {
  *out += "{\"name\":\"";
  AppendJsonEscaped(out, e.name);
  *out += "\",\"cat\":\"";
  *out += e.category;
  *out += "\",\"ph\":\"";
  *out += e.dur_seconds < 0 ? "i\",\"s\":\"t" : "X";
  *out += "\",\"pid\":0,\"tid\":";
  *out += std::to_string(e.site < 0 ? 0 : e.site);
  *out += ",\"ts\":";
  *out += Micros(e.ts_seconds);
  if (e.dur_seconds >= 0) {
    *out += ",\"dur\":";
    *out += Micros(e.dur_seconds);
  }
  *out += ",\"args\":{\"trace\":\"";
  *out += std::to_string(e.trace_id);
  *out += "\",\"span\":\"";
  *out += std::to_string(e.span_id);
  *out += "\",\"parent\":\"";
  *out += std::to_string(e.parent_id);
  *out += "\"";
  for (const auto& [key, value] : e.args) {
    *out += ",\"";
    AppendJsonEscaped(out, key);
    *out += "\":\"";
    AppendJsonEscaped(out, value);
    *out += "\"";
  }
  *out += "}}";
}

}  // namespace

std::string Tracer::ToChromeJson(std::string_view process_name) const {
  std::string out = "[\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
                    "\"tid\":0,\"args\":{\"name\":\"";
  AppendJsonEscaped(&out, process_name);
  out += "\"}}";
  for (const TraceEvent& e : Collect()) {
    out += ",\n";
    AppendEventJson(&out, e);
  }
  out += "\n]\n";
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path,
                               std::string_view process_name) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open trace file \"" + path +
                                   "\" for writing");
  }
  const std::string json = ToChromeJson(process_name);
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return Status::Internal("short write to trace file \"" + path + "\"");
  }
  return Status::OK();
}

namespace {

void AppendBreakdownLine(std::ostringstream* out, const TraceEvent& e,
                         double origin, int depth) {
  for (int i = 0; i < depth; ++i) *out << "  ";
  *out << e.name << "  site " << e.site << "  @+"
       << Micros(e.ts_seconds - origin) << "us";
  if (e.dur_seconds >= 0) {
    *out << "  " << Micros(e.dur_seconds) << "us";
  } else {
    *out << "  (instant)";
  }
  for (const auto& [key, value] : e.args) {
    *out << "  " << key << "=" << value;
  }
  *out << "\n";
}

}  // namespace

std::string Tracer::Breakdown(uint64_t trace_id) const {
  std::vector<TraceEvent> events;
  for (TraceEvent& e : Collect()) {
    if (e.trace_id == trace_id) events.push_back(std::move(e));
  }
  std::ostringstream out;
  if (events.empty()) {
    out << "trace " << trace_id << ": no events\n";
    return out.str();
  }
  double origin = events[0].ts_seconds;
  double end = origin;
  for (const TraceEvent& e : events) {
    origin = std::min(origin, e.ts_seconds);
    end = std::max(end, e.ts_seconds +
                            (e.dur_seconds > 0 ? e.dur_seconds : 0.0));
  }
  out << "trace " << trace_id << ": " << events.size() << " events, "
      << Micros(end - origin) << "us\n";

  // parent span id -> children (insertion order preserved; ties in
  // virtual time keep their causal order).
  std::map<uint64_t, std::vector<const TraceEvent*>> children;
  std::map<uint64_t, const TraceEvent*> by_span;
  for (const TraceEvent& e : events) {
    if (e.span_id != 0) by_span.emplace(e.span_id, &e);
  }
  std::vector<const TraceEvent*> roots;
  for (const TraceEvent& e : events) {
    if (e.parent_id != 0 && by_span.count(e.parent_id) > 0) {
      children[e.parent_id].push_back(&e);
    } else {
      roots.push_back(&e);
    }
  }
  // Iterative DFS so a deep tree cannot overflow the stack.
  std::vector<std::pair<const TraceEvent*, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 1);
  }
  while (!stack.empty()) {
    auto [event, depth] = stack.back();
    stack.pop_back();
    AppendBreakdownLine(&out, *event, origin, depth);
    if (event->span_id == 0) continue;
    auto it = children.find(event->span_id);
    if (it == children.end()) continue;
    for (auto child = it->second.rbegin(); child != it->second.rend();
         ++child) {
      stack.emplace_back(*child, depth + 1);
    }
  }
  return out.str();
}

Tracer* DefaultTracer() {
  static Tracer* tracer = [] {
    const char* env = std::getenv("PARBOX_TRACE");
    if (env == nullptr || env[0] == '\0') {
      return static_cast<Tracer*>(nullptr);
    }
    return new Tracer();  // process lifetime, intentionally leaked
  }();
  return tracer;
}

}  // namespace parbox::obs
