#include "xml/parser.h"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

namespace parbox::xml {

namespace {

bool IsNameStart(char c) {
  // '@' admits the parser's own attribute-as-element encoding.
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '@';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Result<Document> Parse() {
    Document doc;
    SkipProlog();
    if (AtEnd()) return Fail("document has no root element");
    if (Peek() != '<') return Fail("expected root element");
    Node* root = nullptr;
    Status st = ParseElement(&doc, &root);
    if (!st.ok()) return st;
    doc.set_root(root);
    SkipMisc();
    if (!AtEnd()) return Fail("trailing content after root element");
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }
  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  bool Consume(std::string_view token) {
    if (input_.substr(pos_, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }
  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  Status Fail(const std::string& what) {
    return Status::ParseError(what + " at " + std::to_string(line_) + ":" +
                              std::to_string(col_));
  }

  /// XML declaration, comments, PIs, whitespace before the root.
  void SkipProlog() {
    for (;;) {
      SkipSpace();
      if (input_.substr(pos_, 2) == "<?") {
        SkipUntil("?>");
      } else if (input_.substr(pos_, 4) == "<!--") {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (input_.substr(pos_, 4) == "<!--") {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    while (!AtEnd() && input_.substr(pos_, terminator.size()) != terminator) {
      Advance();
    }
    Consume(terminator);
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Fail("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Decode one entity starting at '&'. Appends to `out`.
  Status ParseEntity(std::string* out) {
    Advance();  // '&'
    size_t start = pos_;
    while (!AtEnd() && Peek() != ';') {
      if (pos_ - start > 8) return Fail("unterminated entity");
      Advance();
    }
    if (AtEnd()) return Fail("unterminated entity");
    std::string_view name = input_.substr(start, pos_ - start);
    Advance();  // ';'
    if (name == "amp") {
      out->push_back('&');
    } else if (name == "lt") {
      out->push_back('<');
    } else if (name == "gt") {
      out->push_back('>');
    } else if (name == "quot") {
      out->push_back('"');
    } else if (name == "apos") {
      out->push_back('\'');
    } else if (!name.empty() && name[0] == '#') {
      long code = 0;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        code = std::strtol(std::string(name.substr(2)).c_str(), nullptr, 16);
      } else {
        code = std::strtol(std::string(name.substr(1)).c_str(), nullptr, 10);
      }
      if (code <= 0 || code > 0x10FFFF) return Fail("bad character reference");
      // Encode as UTF-8.
      unsigned cp = static_cast<unsigned>(code);
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    } else {
      return Fail("unknown entity '&" + std::string(name) + ";'");
    }
    return Status::OK();
  }

  Result<std::string> ParseAttrValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Fail("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        PARBOX_RETURN_IF_ERROR(ParseEntity(&value));
      } else {
        value.push_back(Peek());
        Advance();
      }
    }
    if (AtEnd()) return Fail("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  /// Parse an element whose '<' is the current byte. Iterative with an
  /// explicit open-element stack: nesting depth is bounded only by
  /// memory, so deep chain documents (version histories thousands of
  /// sites long) parse without exhausting the C++ stack.
  Status ParseElement(Document* doc, Node** out) {
    struct Open {
      Node* element;
      std::string name;  // for close-tag matching and error messages
      std::string text;  // pending character data
    };
    std::vector<Open> stack;

    auto flush_text = [&](Open& open) {
      if (open.text.empty()) return;
      bool all_space = true;
      for (char c : open.text) {
        if (!IsSpace(c)) all_space = false;
      }
      if (!(all_space && options_.skip_whitespace_text)) {
        doc->AppendChild(open.element, doc->NewText(open.text));
      }
      open.text.clear();
    };

    // Loop invariant at the top: the current byte is the '<' of a
    // start tag (the root's on entry, a child's after the content scan
    // below breaks out on one).
    for (;;) {
      Advance();  // '<'
      PARBOX_ASSIGN_OR_RETURN(std::string name, ParseName());

      // Attributes.
      struct Attr {
        std::string name;
        std::string value;
      };
      std::vector<Attr> attrs;
      for (;;) {
        SkipSpace();
        if (AtEnd()) return Fail("unterminated start tag");
        if (Peek() == '>' || Peek() == '/') break;
        PARBOX_ASSIGN_OR_RETURN(std::string aname, ParseName());
        SkipSpace();
        if (AtEnd() || Peek() != '=') return Fail("expected '=' in attribute");
        Advance();
        SkipSpace();
        PARBOX_ASSIGN_OR_RETURN(std::string avalue, ParseAttrValue());
        attrs.push_back({std::move(aname), std::move(avalue)});
      }

      // A completed node (virtual or self-closing); nullptr when the
      // tag opened an element that now tops the stack.
      Node* completed = nullptr;
      if (name == "parbox:virtual") {
        // The writer's encoding of virtual nodes.
        if (attrs.size() != 1 || attrs[0].name != "ref") {
          return Fail("parbox:virtual requires exactly a ref attribute");
        }
        if (!Consume("/>")) return Fail("parbox:virtual must be self-closing");
        PARBOX_ASSIGN_OR_RETURN(FragmentId ref,
                                ParseFragmentRef(attrs[0].value));
        completed = doc->NewVirtual(ref);
      } else {
        Node* element = doc->NewElement(name);
        for (const Attr& a : attrs) {
          Node* attr_el = doc->NewElement("@" + a.name);
          if (!a.value.empty()) {
            doc->AppendChild(attr_el, doc->NewText(a.value));
          }
          doc->AppendChild(element, attr_el);
        }
        if (Consume("/>")) {
          completed = element;
        } else if (!Consume(">")) {
          return Fail("expected '>'");
        } else {
          stack.push_back(Open{element, std::move(name), {}});
        }
      }
      if (completed != nullptr) {
        if (stack.empty()) {
          *out = completed;
          return Status::OK();
        }
        doc->AppendChild(stack.back().element, completed);
      }

      // Content of the innermost open element, until a child start tag
      // (break to the outer loop) or its close tag (pop; the root's
      // close returns).
      while (!stack.empty()) {
        Open& open = stack.back();
        if (AtEnd()) return Fail("unterminated element <" + open.name + ">");
        if (Peek() == '<') {
          if (PeekAt(1) == '/') {
            flush_text(open);
            Advance();
            Advance();
            PARBOX_ASSIGN_OR_RETURN(std::string close, ParseName());
            if (close != open.name) {
              return Fail("mismatched close tag </" + close + "> for <" +
                          open.name + ">");
            }
            SkipSpace();
            if (!Consume(">")) return Fail("expected '>' in close tag");
            Node* done = open.element;
            stack.pop_back();
            if (stack.empty()) {
              *out = done;
              return Status::OK();
            }
            doc->AppendChild(stack.back().element, done);
            continue;
          }
          if (input_.substr(pos_, 4) == "<!--") {
            SkipUntil("-->");
            continue;
          }
          if (input_.substr(pos_, 9) == "<![CDATA[") {
            for (size_t i = 0; i < 9; ++i) Advance();
            size_t start = pos_;
            while (!AtEnd() && input_.substr(pos_, 3) != "]]>") Advance();
            if (AtEnd()) return Fail("unterminated CDATA section");
            open.text.append(input_.substr(start, pos_ - start));
            Consume("]]>");
            continue;
          }
          if (input_.substr(pos_, 2) == "<!") {
            return Fail("DTD markup is not supported");
          }
          if (input_.substr(pos_, 2) == "<?") {
            SkipUntil("?>");
            continue;
          }
          flush_text(open);
          break;  // child start tag: parse it at the outer loop top
        }
        if (Peek() == '&') {
          PARBOX_RETURN_IF_ERROR(ParseEntity(&open.text));
          continue;
        }
        open.text.push_back(Peek());
        Advance();
      }
    }
  }

  /// A parbox:virtual ref attribute: a non-negative decimal FragmentId.
  Result<FragmentId> ParseFragmentRef(const std::string& value) {
    if (value.empty()) return Fail("empty fragment ref");
    long long ref = 0;
    for (char c : value) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return Fail("bad fragment ref '" + value + "'");
      }
      ref = ref * 10 + (c - '0');
      if (ref > std::numeric_limits<FragmentId>::max()) {
        return Fail("fragment ref '" + value + "' out of range");
      }
    }
    return static_cast<FragmentId>(ref);
  }

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

}  // namespace

Result<Document> ParseXml(std::string_view input,
                          const ParseOptions& options) {
  Parser parser(input, options);
  return parser.Parse();
}

}  // namespace parbox::xml
