#include "xml/dom.h"

#include <cassert>
#include <vector>

namespace parbox::xml {

bool DirectTextEquals(const Node& n, std::string_view expected) {
  if (n.is_text()) return n.text() == expected;
  size_t pos = 0;
  for (const Node* c = n.first_child; c != nullptr; c = c->next_sibling) {
    if (!c->is_text()) continue;
    std::string_view t = c->text();
    if (pos + t.size() > expected.size()) return false;
    if (expected.substr(pos, t.size()) != t) return false;
    pos += t.size();
  }
  return pos == expected.size();
}

std::string DirectText(const Node& n) {
  if (n.is_text()) return std::string(n.text());
  std::string out;
  for (const Node* c = n.first_child; c != nullptr; c = c->next_sibling) {
    if (c->is_text()) out += c->text();
  }
  return out;
}

Node* Document::AllocNode() { return arena_.New<Node>(); }

Node* Document::NewElement(std::string_view label) {
  Node* n = AllocNode();
  n->kind = NodeKind::kElement;
  n->data = arena_.CopyString(label.data(), label.size());
  return n;
}

Node* Document::NewText(std::string_view content) {
  Node* n = AllocNode();
  n->kind = NodeKind::kText;
  n->data = arena_.CopyString(content.data(), content.size());
  return n;
}

Node* Document::NewVirtual(FragmentId fragment) {
  Node* n = AllocNode();
  n->kind = NodeKind::kVirtual;
  n->fragment_ref = fragment;
  return n;
}

void Document::AppendChild(Node* parent, Node* child) {
  InsertBefore(parent, child, nullptr);
}

void Document::InsertBefore(Node* parent, Node* child, Node* before) {
  assert(parent != nullptr && child != nullptr);
  assert(child->parent == nullptr && "child must be detached");
  assert(before == nullptr || before->parent == parent);
  child->parent = parent;
  if (before == nullptr) {
    child->prev_sibling = parent->last_child;
    child->next_sibling = nullptr;
    if (parent->last_child != nullptr) {
      parent->last_child->next_sibling = child;
    } else {
      parent->first_child = child;
    }
    parent->last_child = child;
  } else {
    child->next_sibling = before;
    child->prev_sibling = before->prev_sibling;
    if (before->prev_sibling != nullptr) {
      before->prev_sibling->next_sibling = child;
    } else {
      parent->first_child = child;
    }
    before->prev_sibling = child;
  }
}

void Document::Detach(Node* n) {
  assert(n != nullptr);
  Node* parent = n->parent;
  if (parent == nullptr) {
    if (root_ == n) root_ = nullptr;
    return;
  }
  if (n->prev_sibling != nullptr) {
    n->prev_sibling->next_sibling = n->next_sibling;
  } else {
    parent->first_child = n->next_sibling;
  }
  if (n->next_sibling != nullptr) {
    n->next_sibling->prev_sibling = n->prev_sibling;
  } else {
    parent->last_child = n->prev_sibling;
  }
  n->parent = nullptr;
  n->prev_sibling = nullptr;
  n->next_sibling = nullptr;
}

void Document::SetLabel(Node* n, std::string_view label) {
  assert(n != nullptr && n->is_element());
  n->data = arena_.CopyString(label.data(), label.size());
}

Node* Document::DeepCopy(const Node* src) {
  assert(src != nullptr);
  // Iterative copy: stack of (source node, copied parent).
  Node* copy_root = nullptr;
  std::vector<std::pair<const Node*, Node*>> stack;
  stack.emplace_back(src, nullptr);
  while (!stack.empty()) {
    auto [s, copied_parent] = stack.back();
    stack.pop_back();
    Node* c = AllocNode();
    c->kind = s->kind;
    c->fragment_ref = s->fragment_ref;
    if (s->kind == NodeKind::kVirtual) {
      c->data = "";
    } else {
      std::string_view d(s->data);
      c->data = arena_.CopyString(d.data(), d.size());
    }
    if (copied_parent == nullptr) {
      copy_root = c;
    } else {
      // Children were pushed in reverse order, so appending keeps order.
      AppendChild(copied_parent, c);
    }
    std::vector<const Node*> kids;
    for (const Node* k = s->first_child; k != nullptr; k = k->next_sibling) {
      kids.push_back(k);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, c);
    }
  }
  return copy_root;
}

namespace {

template <typename Fn>
void ForEachNode(const Node* root, Fn&& fn) {
  if (root == nullptr) return;
  std::vector<const Node*> stack{root};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    fn(n);
    for (const Node* c = n->last_child; c != nullptr; c = c->prev_sibling) {
      stack.push_back(c);
    }
  }
}

}  // namespace

size_t CountNodes(const Node* n) {
  size_t count = 0;
  ForEachNode(n, [&](const Node*) { ++count; });
  return count;
}

size_t CountElements(const Node* n) {
  size_t count = 0;
  ForEachNode(n, [&](const Node* x) {
    if (x->is_element()) ++count;
  });
  return count;
}

size_t CountVirtuals(const Node* n) {
  size_t count = 0;
  ForEachNode(n, [&](const Node* x) {
    if (x->is_virtual()) ++count;
  });
  return count;
}

size_t TreeDepth(const Node* n) {
  if (n == nullptr) return 0;
  size_t best = 0;
  std::vector<std::pair<const Node*, size_t>> stack{{n, 1}};
  while (!stack.empty()) {
    auto [x, d] = stack.back();
    stack.pop_back();
    if (d > best) best = d;
    for (const Node* c = x->first_child; c != nullptr; c = c->next_sibling) {
      stack.emplace_back(c, d + 1);
    }
  }
  return best;
}

bool TreeEquals(const Node* a, const Node* b) {
  if (a == nullptr || b == nullptr) return a == b;
  std::vector<std::pair<const Node*, const Node*>> stack{{a, b}};
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    if (x->kind != y->kind) return false;
    if (x->fragment_ref != y->fragment_ref) return false;
    if (std::string_view(x->data) != std::string_view(y->data)) return false;
    const Node* cx = x->first_child;
    const Node* cy = y->first_child;
    while (cx != nullptr && cy != nullptr) {
      stack.emplace_back(cx, cy);
      cx = cx->next_sibling;
      cy = cy->next_sibling;
    }
    if (cx != nullptr || cy != nullptr) return false;
  }
  return true;
}

Status ValidateLinks(const Node* root) {
  if (root == nullptr) return Status::OK();
  Status bad = Status::OK();
  ForEachNode(root, [&](const Node* n) {
    if (!bad.ok()) return;
    const Node* prev = nullptr;
    for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      if (c->parent != n) {
        bad = Status::Internal("child with wrong parent pointer");
        return;
      }
      if (c->prev_sibling != prev) {
        bad = Status::Internal("broken prev_sibling link");
        return;
      }
      prev = c;
    }
    if (n->last_child != prev) {
      bad = Status::Internal("last_child does not match sibling chain");
      return;
    }
    if ((n->first_child == nullptr) != (n->last_child == nullptr)) {
      bad = Status::Internal("first_child/last_child nullness mismatch");
      return;
    }
    if (n->is_virtual() && n->first_child != nullptr) {
      bad = Status::Internal("virtual node has children");
      return;
    }
  });
  return bad;
}

Node* FindFirstElement(Node* root, std::string_view label) {
  Node* found = nullptr;
  ForEachNode(root, [&](const Node* n) {
    if (found == nullptr && n->is_element() && n->label() == label) {
      found = const_cast<Node*>(n);
    }
  });
  return found;
}

}  // namespace parbox::xml
