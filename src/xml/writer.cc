#include "xml/writer.h"

#include <cassert>
#include <cstdio>
#include <vector>

namespace parbox::xml {

namespace {

/// Sink abstraction so WriteXml and SerializedSize share one walker.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void Append(std::string_view s) = 0;
};

class StringSink : public Sink {
 public:
  void Append(std::string_view s) override { out_.append(s); }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class CountingSink : public Sink {
 public:
  void Append(std::string_view s) override { count_ += s.size(); }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

void AppendEscaped(Sink* sink, std::string_view text) {
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    const char* rep = nullptr;
    switch (text[i]) {
      case '&': rep = "&amp;"; break;
      case '<': rep = "&lt;"; break;
      case '>': rep = "&gt;"; break;
      case '"': rep = "&quot;"; break;
      case '\'': rep = "&apos;"; break;
      default: break;
    }
    if (rep != nullptr) {
      sink->Append(text.substr(start, i - start));
      sink->Append(rep);
      start = i + 1;
    }
  }
  sink->Append(text.substr(start));
}

void WriteNode(Sink* sink, const Node* root, const WriteOptions& options) {
  // Iterative serializer: frames carry the node and whether we are
  // entering (emit open tag, push children) or leaving (emit close tag).
  struct Frame {
    const Node* node;
    bool closing;
    int depth;
  };
  std::vector<Frame> stack{{root, false, 0}};
  char buf[48];
  auto indent = [&](int depth) {
    if (!options.indent || depth < 0) return;
    sink->Append("\n");
    for (int i = 0; i < depth; ++i) sink->Append("  ");
  };
  bool first = true;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node* n = f.node;
    if (f.closing) {
      indent(f.depth);
      sink->Append("</");
      sink->Append(n->label());
      sink->Append(">");
      continue;
    }
    switch (n->kind) {
      case NodeKind::kText:
        AppendEscaped(sink, n->text());
        break;
      case NodeKind::kVirtual:
        if (!first) indent(f.depth);
        std::snprintf(buf, sizeof(buf), "<parbox:virtual ref=\"%d\"/>",
                      n->fragment_ref);
        sink->Append(buf);
        break;
      case NodeKind::kElement: {
        if (!first) indent(f.depth);
        sink->Append("<");
        sink->Append(n->label());
        if (n->first_child == nullptr) {
          sink->Append("/>");
          break;
        }
        sink->Append(">");
        // Indent the close tag only when there is no text content (so
        // round-tripping text stays exact).
        bool has_text = false;
        for (const Node* c = n->first_child; c != nullptr;
             c = c->next_sibling) {
          if (c->is_text()) has_text = true;
        }
        stack.push_back({n, true, has_text ? -1 : f.depth});
        if (has_text) {
          // Suppress indentation inside mixed content.
          for (const Node* c = n->last_child; c != nullptr;
               c = c->prev_sibling) {
            stack.push_back({c, false, -1});
          }
        } else {
          for (const Node* c = n->last_child; c != nullptr;
               c = c->prev_sibling) {
            stack.push_back({c, false, f.depth + 1});
          }
        }
        break;
      }
    }
    first = false;
  }
}

}  // namespace

std::string EscapeText(std::string_view text) {
  StringSink sink;
  AppendEscaped(&sink, text);
  return sink.Take();
}

std::string WriteXml(const Node* n, const WriteOptions& options) {
  if (n == nullptr) return "";
  StringSink sink;
  WriteOptions adjusted = options;
  WriteNode(&sink, n, adjusted);
  return sink.Take();
}

uint64_t SerializedSize(const Node* n, const WriteOptions& options) {
  if (n == nullptr) return 0;
  CountingSink sink;
  WriteNode(&sink, n, options);
  return sink.count();
}

}  // namespace parbox::xml
