// A small, strict XML parser for the subset the library needs.
//
// Supported: elements, text, attributes (converted to `@name` child
// elements carrying the value as text, since the query language has no
// attribute axis), comments, CDATA sections, XML declarations and
// processing instructions (skipped), the five predefined entities and
// numeric character references. `<parbox:virtual ref="K"/>` elements
// (emitted by the writer) become virtual nodes again, so fragments
// round-trip.
//
// Unsupported (rejected with a ParseError): DTDs, namespaces beyond the
// literal `parbox:virtual` tag, and mismatched / unterminated markup.

#ifndef PARBOX_XML_PARSER_H_
#define PARBOX_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/dom.h"

namespace parbox::xml {

struct ParseOptions {
  /// Drop text nodes that contain only whitespace (what you want when
  /// reading pretty-printed documents).
  bool skip_whitespace_text = true;
};

/// Parse `input` into a Document. On failure the status message
/// contains 1-based line:column of the offending byte.
Result<Document> ParseXml(std::string_view input,
                          const ParseOptions& options = {});

}  // namespace parbox::xml

#endif  // PARBOX_XML_PARSER_H_
