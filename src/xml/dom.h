// An arena-backed XML DOM: the ordered labelled tree all parbox
// algorithms operate on.
//
// Three node kinds exist:
//   * kElement  — a labelled interior node (children: any kind).
//   * kText     — a character-data leaf.
//   * kVirtual  — a placeholder leaf standing for a sub-fragment of a
//                 fragmented document (Sec. 2.1 of the paper). While
//                 traversing a fragment, reaching a virtual node means
//                 "the subtree continues in fragment `fragment_ref`,
//                 stored possibly at another site".
//
// Nodes are allocated from the owning Document's arena and live exactly
// as long as it. Sibling lists are doubly linked so the paper's
// `delNode` update is O(1).

#ifndef PARBOX_XML_DOM_H_
#define PARBOX_XML_DOM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/arena.h"
#include "common/status.h"

namespace parbox::xml {

enum class NodeKind : uint8_t { kElement, kText, kVirtual };

/// Identifies a fragment of a fragmented tree. Dense, 0-based.
using FragmentId = int32_t;
inline constexpr FragmentId kNoFragment = -1;

/// A DOM node. Create through Document; never directly.
struct Node {
  NodeKind kind = NodeKind::kElement;
  /// Element label, or text content for kText. Arena-owned, NUL-terminated.
  const char* data = "";
  /// For kVirtual: the referenced sub-fragment. Else kNoFragment.
  FragmentId fragment_ref = kNoFragment;

  Node* parent = nullptr;
  Node* first_child = nullptr;
  Node* last_child = nullptr;
  Node* prev_sibling = nullptr;
  Node* next_sibling = nullptr;

  bool is_element() const { return kind == NodeKind::kElement; }
  bool is_text() const { return kind == NodeKind::kText; }
  bool is_virtual() const { return kind == NodeKind::kVirtual; }

  /// Element label ("" for non-elements).
  std::string_view label() const {
    return is_element() ? std::string_view(data) : std::string_view();
  }
  /// Text content ("" for non-text nodes).
  std::string_view text() const {
    return is_text() ? std::string_view(data) : std::string_view();
  }
};

/// True iff the concatenation of `n`'s *direct* text children equals
/// `expected`. This is the paper's `text() = "str"` test at an element;
/// it streams the comparison and never allocates.
bool DirectTextEquals(const Node& n, std::string_view expected);

/// Concatenated direct text children (allocates; for display/tests).
std::string DirectText(const Node& n);

/// An XML document: an arena plus a root node.
class Document {
 public:
  Document() = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  Node* root() const { return root_; }
  void set_root(Node* n) { root_ = n; }

  /// Create a detached element node with the given label.
  Node* NewElement(std::string_view label);
  /// Create a detached text node.
  Node* NewText(std::string_view content);
  /// Create a detached virtual node referencing `fragment`.
  Node* NewVirtual(FragmentId fragment);

  /// Append `child` as the last child of `parent`. `child` must be
  /// detached and owned by this document.
  void AppendChild(Node* parent, Node* child);

  /// Insert `child` immediately before `before` (a child of `parent`).
  /// If `before` is null, behaves like AppendChild.
  void InsertBefore(Node* parent, Node* child, Node* before);

  /// Unlink `n` (and its whole subtree) from its parent. The nodes stay
  /// arena-owned (memory is reclaimed when the document dies).
  void Detach(Node* n);

  /// Relabel element `n` in place (the paper's renameLabel update).
  /// The new label is arena-copied; the old bytes stay arena-owned
  /// until the document dies, like any other dead node data.
  void SetLabel(Node* n, std::string_view label);

  /// Deep-copy `src` (possibly from another document) into this
  /// document; returns the detached copy root.
  Node* DeepCopy(const Node* src);

  /// Memory the node storage occupies.
  size_t arena_bytes() const { return arena_.bytes_allocated(); }

 private:
  Node* AllocNode();

  Arena arena_;
  Node* root_ = nullptr;
};

/// Number of nodes of any kind in the subtree rooted at `n` (0 if null).
size_t CountNodes(const Node* n);
/// Number of element nodes in the subtree (the unit of computation cost).
size_t CountElements(const Node* n);
/// Number of virtual nodes in the subtree.
size_t CountVirtuals(const Node* n);
/// Maximum depth (root = 1; 0 if null).
size_t TreeDepth(const Node* n);

/// Structural equality of two subtrees (kind, data, fragment_ref,
/// children, in order).
bool TreeEquals(const Node* a, const Node* b);

/// Verify parent/sibling link invariants over the whole subtree.
/// Returns OK or an Internal status naming the first violation.
Status ValidateLinks(const Node* root);

/// Find the first element in document order with the given label
/// (including `root` itself), or nullptr.
Node* FindFirstElement(Node* root, std::string_view label);

}  // namespace parbox::xml

#endif  // PARBOX_XML_DOM_H_
