// XML serialization, plus serialized-size accounting.
//
// The size of a fragment "on the wire" — what NaiveCentralized pays to
// ship data to the coordinator — is defined as the byte length of this
// writer's output, so the traffic numbers in benchmarks are honest.

#ifndef PARBOX_XML_WRITER_H_
#define PARBOX_XML_WRITER_H_

#include <cstdint>
#include <string>

#include "xml/dom.h"

namespace parbox::xml {

struct WriteOptions {
  /// Pretty-print with 2-space indentation and newlines.
  bool indent = false;
};

/// Serialize the subtree rooted at `n` to XML text. Virtual nodes are
/// written as self-closing `<parbox:virtual ref="K"/>` elements, which
/// the parser recognizes and turns back into virtual nodes.
std::string WriteXml(const Node* n, const WriteOptions& options = {});

/// Byte length of WriteXml(n) without materializing the string.
uint64_t SerializedSize(const Node* n, const WriteOptions& options = {});

/// Escape &, <, >, ", ' for use in text content.
std::string EscapeText(std::string_view text);

}  // namespace parbox::xml

#endif  // PARBOX_XML_WRITER_H_
