// A simulated cluster: sites with serialized compute queues connected
// by a latency + bandwidth network, on a deterministic virtual clock.
//
// This substitutes for the paper's 10-machine LAN testbed (see
// DESIGN.md). Algorithms really *do* their computation inside the
// scheduled events; the cluster only decides *when* things happen:
//
//   * Compute(site, ops, done)  — site performs `ops` abstract kernel
//     operations (element x QList-entry steps). A site runs one task at
//     a time (FIFO), so two fragments on one machine serialize, exactly
//     as in Experiment 4.
//   * Send(from, to, bytes, deliver) — the message arrives after
//     latency + bytes/bandwidth. Local (from == to) delivery is free.
//
// Visits: the paper counts how many times each site is "visited" —
// contacted to do work on a fragment. Algorithms call RecordVisit when
// they send such a request.

#ifndef PARBOX_SIM_CLUSTER_H_
#define PARBOX_SIM_CLUSTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/event_loop.h"
#include "sim/traffic.h"

namespace parbox::sim {

using SiteId = int32_t;

struct NetworkParams {
  double latency_seconds = 0.0001;               ///< 0.1 ms one-way LAN
  double bandwidth_bytes_per_second = 12.5e6;    ///< 100 Mbit/s
  /// Abstract kernel throughput: (element x QList-entry) ops per
  /// second. Calibrated so a ~50 MB-equivalent fragment with |QList|=8
  /// evaluates in seconds, matching the paper's scale.
  double site_ops_per_second = 2.0e7;
};

class Cluster {
 public:
  Cluster(int num_sites, const NetworkParams& params = {});

  int num_sites() const { return static_cast<int>(busy_until_.size()); }
  EventLoop& loop() { return loop_; }
  const EventLoop& loop() const { return loop_; }
  double now() const { return loop_.now(); }
  const NetworkParams& params() const { return params_; }

  /// Enqueue `ops` abstract operations on `site`; `done` runs (at the
  /// finish time) after all previously enqueued work on that site.
  void Compute(SiteId site, uint64_t ops, EventLoop::Task done);

  /// Ship `bytes` from `from` to `to`; `deliver` runs at arrival.
  /// `tag` groups traffic in the report ("query", "triplet", "data");
  /// it is interned on first use, so passing a literal costs no
  /// allocation per message.
  void Send(SiteId from, SiteId to, uint64_t bytes, std::string_view tag,
            EventLoop::Task deliver);

  /// Count a site visit (a work-initiating contact).
  void RecordVisit(SiteId site) { ++visits_[site]; }

  /// Run the event loop to completion and return the virtual makespan.
  double Run();

  /// Append `additional` fresh idle sites (a new namespace joining a
  /// shared substrate). Existing sites, clock, and meters are
  /// untouched. Only between runs (the loop must be quiescent).
  void Grow(int additional);

  /// Rewind to a just-constructed state (clock 0, no traffic, no
  /// visits, all sites idle) without reallocating. A long-lived owner
  /// (core::Session) resets between evaluations so every run's report
  /// is bit-identical to one on a fresh cluster.
  void Reset();

  const TrafficStats& traffic() const { return traffic_; }
  uint64_t visits(SiteId site) const { return visits_[site]; }
  const std::vector<uint64_t>& all_visits() const { return visits_; }
  /// Total busy seconds of a site (its share of "total computation").
  double busy_seconds(SiteId site) const { return busy_seconds_[site]; }
  double total_busy_seconds() const;

 private:
  EventLoop loop_;
  NetworkParams params_;
  TrafficStats traffic_;
  std::vector<double> busy_until_;
  std::vector<double> busy_seconds_;
  std::vector<uint64_t> visits_;
};

}  // namespace parbox::sim

#endif  // PARBOX_SIM_CLUSTER_H_
