// A minimal deterministic discrete-event loop (virtual time).
//
// Events fire in (time, insertion order) — ties broken by a sequence
// number, so runs are bit-for-bit reproducible regardless of host
// scheduling. All "work" in the simulated cluster is ordinary C++
// executed when its event fires; only *time* is virtual.

#ifndef PARBOX_SIM_EVENT_LOOP_H_
#define PARBOX_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

namespace parbox::sim {

class EventLoop {
 public:
  using Task = std::function<void()>;

  /// Schedule `task` at absolute virtual time `when` (>= now()).
  void At(double when, Task task);
  /// Schedule `task` `delay` seconds from now.
  void After(double delay, Task task) { At(now_ + delay, std::move(task)); }

  /// Run events until none remain. Reentrant scheduling is fine.
  void Run();

  /// Drop pending events and rewind the clock to 0 — a subsequent run
  /// is bit-identical to one on a freshly constructed loop.
  void Reset();

  /// Current virtual time in seconds.
  double now() const { return now_; }
  /// Number of events executed so far.
  uint64_t events_run() const { return events_run_; }

 private:
  std::map<std::pair<double, uint64_t>, Task> queue_;
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
};

}  // namespace parbox::sim

#endif  // PARBOX_SIM_EVENT_LOOP_H_
