#include "sim/event_loop.h"

#include <cassert>

namespace parbox::sim {

void EventLoop::At(double when, Task task) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.emplace(std::make_pair(when, next_seq_++), std::move(task));
}

void EventLoop::Reset() {
  queue_.clear();
  now_ = 0.0;
  next_seq_ = 0;
  events_run_ = 0;
}

void EventLoop::Run() {
  while (!queue_.empty()) {
    auto node = queue_.extract(queue_.begin());
    now_ = node.key().first;
    ++events_run_;
    node.mapped()();
  }
}

}  // namespace parbox::sim
