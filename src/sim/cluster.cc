#include "sim/cluster.h"

#include <algorithm>
#include <cassert>

namespace parbox::sim {

Cluster::Cluster(int num_sites, const NetworkParams& params)
    : params_(params),
      busy_until_(num_sites, 0.0),
      busy_seconds_(num_sites, 0.0),
      visits_(num_sites, 0) {
  // 0 sites is a valid start for a shared multi-namespace substrate
  // (exec::BackendHost) that grows per document via Grow().
  assert(num_sites >= 0);
}

void Cluster::Grow(int additional) {
  assert(additional >= 0);
  busy_until_.resize(busy_until_.size() + additional, 0.0);
  busy_seconds_.resize(busy_seconds_.size() + additional, 0.0);
  visits_.resize(visits_.size() + additional, 0);
}

void Cluster::Compute(SiteId site, uint64_t ops, EventLoop::Task done) {
  assert(site >= 0 && site < num_sites());
  double duration = static_cast<double>(ops) / params_.site_ops_per_second;
  double start = std::max(loop_.now(), busy_until_[site]);
  double finish = start + duration;
  busy_until_[site] = finish;
  busy_seconds_[site] += duration;
  loop_.At(finish, std::move(done));
}

void Cluster::Send(SiteId from, SiteId to, uint64_t bytes,
                   std::string_view tag, EventLoop::Task deliver) {
  assert(from >= 0 && from < num_sites());
  assert(to >= 0 && to < num_sites());
  if (from == to) {
    // Local hand-off: no network involved.
    loop_.After(0.0, std::move(deliver));
    return;
  }
  traffic_.Record(from, to, bytes, tag);
  double transfer =
      params_.latency_seconds +
      static_cast<double>(bytes) / params_.bandwidth_bytes_per_second;
  loop_.After(transfer, std::move(deliver));
}

double Cluster::Run() {
  loop_.Run();
  return loop_.now();
}

void Cluster::Reset() {
  loop_.Reset();
  traffic_.Reset();
  std::fill(busy_until_.begin(), busy_until_.end(), 0.0);
  std::fill(busy_seconds_.begin(), busy_seconds_.end(), 0.0);
  std::fill(visits_.begin(), visits_.end(), 0);
}

double Cluster::total_busy_seconds() const {
  double total = 0.0;
  for (double s : busy_seconds_) total += s;
  return total;
}

}  // namespace parbox::sim
