#include "sim/traffic.h"

#include <sstream>

#include "common/bytes.h"

namespace parbox::sim {

void TrafficStats::Record(int32_t from, int32_t to, uint64_t bytes,
                          const std::string& tag) {
  (void)from;
  total_bytes_ += bytes;
  total_messages_ += 1;
  bytes_by_tag_[tag] += bytes;
  if (to >= 0) {
    if (static_cast<size_t>(to) >= bytes_into_.size()) {
      bytes_into_.resize(to + 1, 0);
    }
    bytes_into_[to] += bytes;
  }
}

uint64_t TrafficStats::bytes_with_tag(const std::string& tag) const {
  auto it = bytes_by_tag_.find(tag);
  return it == bytes_by_tag_.end() ? 0 : it->second;
}

uint64_t TrafficStats::bytes_into(int32_t site) const {
  if (site < 0 || static_cast<size_t>(site) >= bytes_into_.size()) return 0;
  return bytes_into_[site];
}

std::string TrafficStats::ToString() const {
  std::ostringstream out;
  out << total_messages_ << " messages, " << HumanBytes(total_bytes_);
  for (const auto& [tag, bytes] : bytes_by_tag_) {
    out << "\n  " << tag << ": " << HumanBytes(bytes);
  }
  return out.str();
}

}  // namespace parbox::sim
