#include "sim/traffic.h"

#include <cassert>
#include <sstream>

#include "common/bytes.h"

namespace parbox::sim {

void TrafficStats::Reset() {
  total_bytes_ = 0;
  total_messages_ = 0;
  tag_names_.clear();
  bytes_by_tag_id_.clear();
  msgs_by_tag_id_.clear();
  bytes_into_.clear();
}

TrafficStats::TagId TrafficStats::InternTag(std::string_view tag) {
  for (size_t i = 0; i < tag_names_.size(); ++i) {
    if (tag_names_[i] == tag) return static_cast<TagId>(i);
  }
  tag_names_.emplace_back(tag);
  bytes_by_tag_id_.push_back(0);
  msgs_by_tag_id_.push_back(0);
  return static_cast<TagId>(tag_names_.size() - 1);
}

void TrafficStats::Record(int32_t from, int32_t to, uint64_t bytes,
                          TagId tag) {
  (void)from;
  assert(tag >= 0 && static_cast<size_t>(tag) < tag_names_.size());
  total_bytes_ += bytes;
  total_messages_ += 1;
  bytes_by_tag_id_[tag] += bytes;
  msgs_by_tag_id_[tag] += 1;
  if (to >= 0) {
    if (static_cast<size_t>(to) >= bytes_into_.size()) {
      bytes_into_.resize(to + 1, 0);
    }
    bytes_into_[to] += bytes;
  }
}

void TrafficStats::AddTagCounts(std::string_view tag, uint64_t bytes,
                                uint64_t messages) {
  const TagId id = InternTag(tag);
  total_bytes_ += bytes;
  total_messages_ += messages;
  bytes_by_tag_id_[id] += bytes;
  msgs_by_tag_id_[id] += messages;
}

void TrafficStats::AddBytesInto(int32_t site, uint64_t bytes) {
  if (site < 0) return;
  if (static_cast<size_t>(site) >= bytes_into_.size()) {
    bytes_into_.resize(site + 1, 0);
  }
  bytes_into_[site] += bytes;
}

void TrafficStats::Merge(const TrafficStats& other) {
  total_bytes_ += other.total_bytes_;
  total_messages_ += other.total_messages_;
  for (size_t i = 0; i < other.tag_names_.size(); ++i) {
    const TagId tag = InternTag(other.tag_names_[i]);
    bytes_by_tag_id_[tag] += other.bytes_by_tag_id_[i];
    msgs_by_tag_id_[tag] += other.msgs_by_tag_id_[i];
  }
  if (other.bytes_into_.size() > bytes_into_.size()) {
    bytes_into_.resize(other.bytes_into_.size(), 0);
  }
  for (size_t i = 0; i < other.bytes_into_.size(); ++i) {
    bytes_into_[i] += other.bytes_into_[i];
  }
}

uint64_t TrafficStats::bytes_with_tag(std::string_view tag) const {
  for (size_t i = 0; i < tag_names_.size(); ++i) {
    if (tag_names_[i] == tag) return bytes_by_tag_id_[i];
  }
  return 0;
}

uint64_t TrafficStats::messages_with_tag(std::string_view tag) const {
  for (size_t i = 0; i < tag_names_.size(); ++i) {
    if (tag_names_[i] == tag) return msgs_by_tag_id_[i];
  }
  return 0;
}

std::map<std::string, uint64_t> TrafficStats::messages_by_tag() const {
  std::map<std::string, uint64_t> out;
  for (size_t i = 0; i < tag_names_.size(); ++i) {
    out[tag_names_[i]] = msgs_by_tag_id_[i];
  }
  return out;
}

std::map<std::string, uint64_t> TrafficStats::bytes_by_tag() const {
  std::map<std::string, uint64_t> out;
  for (size_t i = 0; i < tag_names_.size(); ++i) {
    out[tag_names_[i]] = bytes_by_tag_id_[i];
  }
  return out;
}

uint64_t TrafficStats::bytes_into(int32_t site) const {
  if (site < 0 || static_cast<size_t>(site) >= bytes_into_.size()) return 0;
  return bytes_into_[site];
}

std::string TrafficStats::ToString() const {
  std::ostringstream out;
  out << total_messages_ << " messages, " << HumanBytes(total_bytes_);
  for (const auto& [tag, bytes] : bytes_by_tag()) {
    out << "\n  " << tag << ": " << HumanBytes(bytes);
  }
  return out.str();
}

}  // namespace parbox::sim
