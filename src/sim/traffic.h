// Network traffic and site-activity accounting for simulated runs.

#ifndef PARBOX_SIM_TRAFFIC_H_
#define PARBOX_SIM_TRAFFIC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace parbox::sim {

/// Everything that crossed the simulated network in one run.
class TrafficStats {
 public:
  void Record(int32_t from, int32_t to, uint64_t bytes,
              const std::string& tag);

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }
  uint64_t bytes_with_tag(const std::string& tag) const;
  const std::map<std::string, uint64_t>& bytes_by_tag() const {
    return bytes_by_tag_;
  }
  /// Bytes received by a site (grown on demand).
  uint64_t bytes_into(int32_t site) const;

  std::string ToString() const;

 private:
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
  std::map<std::string, uint64_t> bytes_by_tag_;
  std::vector<uint64_t> bytes_into_;
};

}  // namespace parbox::sim

#endif  // PARBOX_SIM_TRAFFIC_H_
