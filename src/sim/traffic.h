// Network traffic and site-activity accounting for simulated runs.
//
// Record() sits on the per-message hot path of the simulator, so tags
// are interned in a small-vector registry instead of a string-keyed
// map: Record(TagId) is two array increments, and the string_view
// convenience path costs one allocation-free linear scan over the
// handful of distinct tags a run carries (what Cluster::Send uses).
// The string-keyed views (bytes_by_tag, bytes_with_tag) are
// materialized on demand, keeping the report format byte-identical to
// the pre-interning output.

#ifndef PARBOX_SIM_TRAFFIC_H_
#define PARBOX_SIM_TRAFFIC_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace parbox::sim {

/// Everything that crossed the simulated network in one run.
class TrafficStats {
 public:
  /// Index into this object's tag registry.
  using TagId = int32_t;

  /// Intern `tag`, returning its stable id. O(#distinct tags) scan —
  /// cheaper than a map lookup for the handful of tags a run uses, and
  /// allocation-free for already-known tags.
  TagId InternTag(std::string_view tag);

  /// Hot path: two array increments plus the receive accounting.
  void Record(int32_t from, int32_t to, uint64_t bytes, TagId tag);

  /// Convenience for callers holding a tag string (interns first).
  void Record(int32_t from, int32_t to, uint64_t bytes,
              std::string_view tag) {
    Record(from, to, bytes, InternTag(tag));
  }

  /// Forget everything, including interned tags — the next run's
  /// accounting is bit-identical to a freshly constructed object.
  void Reset();

  /// Bulk-add one tag's counters without per-message Record calls —
  /// how a per-namespace scoped view of a shared substrate's traffic
  /// is rebuilt (exec::BackendHost). Totals are updated too.
  void AddTagCounts(std::string_view tag, uint64_t bytes,
                    uint64_t messages);
  /// Bulk-add received bytes for one site (scoped-view companion to
  /// AddTagCounts; does not touch totals — AddTagCounts already did).
  void AddBytesInto(int32_t site, uint64_t bytes);

  /// Fold `other`'s counters into this object, matching tags by name.
  ///
  /// Concurrency: a TrafficStats is single-writer — Record is two
  /// plain array increments and must never race. Parallel backends
  /// (exec::ThreadPoolBackend) therefore keep one instance per
  /// execution context, each written only by its own thread, and Merge
  /// them into a combined view once the run is quiescent.
  void Merge(const TrafficStats& other);

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }
  uint64_t bytes_with_tag(std::string_view tag) const;
  /// Message count per kind — how many "update" deltas, "triplet"
  /// replies, ... crossed the network (incremental-update accounting).
  uint64_t messages_with_tag(std::string_view tag) const;
  /// Tag -> bytes, sorted by tag name (built on demand; the format the
  /// reports have always printed).
  std::map<std::string, uint64_t> bytes_by_tag() const;
  /// Tag -> messages, sorted by tag name (built on demand).
  std::map<std::string, uint64_t> messages_by_tag() const;
  /// Direct registry reads, intern order — the per-namespace scoped
  /// views (exec::BackendHost) iterate these on every rewind/report
  /// instead of materializing the sorted maps above.
  size_t tag_count() const { return tag_names_.size(); }
  std::string_view tag_name(size_t i) const { return tag_names_[i]; }
  uint64_t tag_bytes(size_t i) const { return bytes_by_tag_id_[i]; }
  uint64_t tag_messages(size_t i) const { return msgs_by_tag_id_[i]; }
  /// Bytes received by a site (grown on demand).
  uint64_t bytes_into(int32_t site) const;

  std::string ToString() const;

 private:
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
  std::vector<std::string> tag_names_;     // registry, index = TagId
  std::vector<uint64_t> bytes_by_tag_id_;  // parallel to tag_names_
  std::vector<uint64_t> msgs_by_tag_id_;   // parallel to tag_names_
  std::vector<uint64_t> bytes_into_;
};

}  // namespace parbox::sim

#endif  // PARBOX_SIM_TRAFFIC_H_
