#include "service/query_service.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/bytes.h"
#include "core/partial_eval.h"
#include "exec/codec.h"
#include "xpath/eval.h"

namespace parbox::service {

namespace {

/// Triplet identity inside one hash-consing factory: structurally
/// equal formulas get equal ExprIds, so element-wise id comparison is
/// the Sec. 5 "did the triplet change" test.
bool SameTriplet(const bexpr::FragmentEquations& a,
                 const bexpr::FragmentEquations& b) {
  return a.fragment == b.fragment && a.v == b.v && a.cv == b.cv &&
         a.dv == b.dv;
}

/// Cap on lanes per fused cache-maintenance walk: bounds the kernel's
/// O(tree depth × total lane width) frame memory while keeping the
/// "one walk per touched fragment" property for any realistic cache.
constexpr size_t kMaxFusedLanes = 256;

}  // namespace

QueryService::QueryService(const frag::FragmentSet* set,
                           const frag::SourceTree* st,
                           const ServiceOptions& options)
    : set_(set),
      options_(options),
      session_(set, st,
               core::SessionOptions{options.network, options.backend,
                                    options.host, options.tracer}) {
  // A bad backend spec is visible through status() from birth (the
  // Create factories refuse outright; Submit re-checks for the
  // non-validating path).
  first_error_ = session_.backend_status();
  InitObs();
  InitScheduler();
}

QueryService::QueryService(frag::FragmentSet* set,
                           const frag::SourceTree* st,
                           const ServiceOptions& options)
    : set_(set),
      options_(options),
      session_(set, st,
               core::SessionOptions{options.network, options.backend,
                                    options.host, options.tracer}) {
  first_error_ = session_.backend_status();
  InitObs();
  InitScheduler();
}

void QueryService::InitScheduler() {
  scheduler_ = options_.scheduler;
  if (scheduler_ == nullptr) return;
  Result<FairScheduler::TenantId> tid =
      scheduler_->AddTenant(std::string(label()), options_.tenant);
  if (tid.ok()) {
    tenant_id_ = *tid;
  } else if (first_error_.ok()) {
    // Invalid tenant config (zero/negative weight): visible through
    // status() from birth; the Create factories refuse outright.
    first_error_ = tid.status();
  }
}

void QueryService::InitObs() {
  tracer_ = options_.tracer;
  sink_ = options_.sink;
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs::MetricsRegistry& m = *metrics_;
  const std::string& p = options_.metrics_prefix;
  using Kind = obs::MetricsRegistry::Kind;
  auto counter = [&](const char* name) {
    return m.Intern(p + name, Kind::kCounter);
  };
  m_submitted_ = counter("service.submitted");
  m_completed_ = counter("service.completed");
  m_cache_hits_ = counter("service.cache_hits");
  m_shared_evals_ = counter("service.shared_evals");
  m_unique_evals_ = counter("service.unique_evals");
  m_rounds_ = counter("service.rounds");
  m_cache_invalidations_ = counter("service.cache_invalidations");
  m_cache_refreshes_ = counter("service.cache_refreshes");
  m_ops_ = counter("service.ops");
  m_fused_walks_ = counter("service.fused_walks");
  m_cse_shared_ = counter("service.cse_shared_exprs");
  m_subsumption_hits_ = counter("cache.subsumption_hits");
  // Service-side wire meters: what the service *asked* the substrate
  // to ship, by tag, coordinator-local hops excluded — definitionally
  // equal to the backend's TrafficStats for the same tags (the
  // equivalence is tested in tests/obs_test.cc).
  m_query_bytes_ = counter("net.query.bytes");
  m_query_msgs_ = counter("net.query.messages");
  m_triplet_bytes_ = counter("net.triplet.bytes");
  m_triplet_msgs_ = counter("net.triplet.messages");
  m_sched_deferred_ = counter("sched.deferred");
  m_latency_ = m.Intern(p + "service.latency_seconds", Kind::kHistogram);
  m_admission_wait_ =
      m.Intern(p + "service.admission_wait_seconds", Kind::kHistogram);
  m_batch_width_ = m.Intern(p + "service.batch_width", Kind::kHistogram);
  m_sched_dispatch_delay_ =
      m.Intern(p + "sched.dispatch_delay_seconds", Kind::kHistogram);
}

Result<std::unique_ptr<QueryService>> QueryService::Create(
    const frag::FragmentSet* set, const frag::SourceTree* st,
    const ServiceOptions& options) {
  auto service =
      std::unique_ptr<QueryService>(new QueryService(set, st, options));
  // Covers the backend spec AND the tenant registration.
  PARBOX_RETURN_IF_ERROR(service->first_error_);
  return service;
}

Result<std::unique_ptr<QueryService>> QueryService::Create(
    frag::FragmentSet* set, const frag::SourceTree* st,
    const ServiceOptions& options) {
  auto service =
      std::unique_ptr<QueryService>(new QueryService(set, st, options));
  PARBOX_RETURN_IF_ERROR(service->first_error_);
  return service;
}

Result<uint64_t> QueryService::Submit(xpath::NormQuery q,
                                      double arrival_seconds,
                                      CompletionFn done) {
  // An invalid ServiceOptions::backend spec surfaces here, with the
  // registered backends listed.
  PARBOX_RETURN_IF_ERROR(session_.backend_status());
  // Prepare = validate + fingerprint + wire-size once, at admission.
  PARBOX_ASSIGN_OR_RETURN(core::PreparedQuery prepared,
                          session_.Prepare(std::move(q)));
  if (session_.st().num_sites() > session_.backend().num_sites()) {
    // A fragmentation update (via an attached view) placed a fragment
    // on a site this service's cluster was never built with.
    return Status::FailedPrecondition(
        "source tree names more sites than the service's cluster; "
        "build a new QueryService for the grown deployment");
  }
  const uint64_t id = next_query_id_++;
  const double arrival = std::max(arrival_seconds, now());
  Submission sub;
  sub.fp = prepared.fingerprint();
  sub.prepared = std::move(prepared);
  sub.submitted_seconds = arrival;
  sub.done = std::move(done);
  if (tracer_ != nullptr && tracer_->enabled()) {
    // The query's trace is born at submission; everything from
    // admission to completion parents beneath this root span (emitted
    // by Complete, spanning submitted -> completed).
    sub.trace = {tracer_->MintTraceId(), tracer_->MintSpanId()};
  }
  metrics_->Increment(m_submitted_);
  submissions_.emplace(id, std::move(sub));
  session_.backend().ScheduleAt(arrival, [this, id] { Admit(id); });
  return id;
}

void QueryService::Admit(uint64_t id) {
  Submission& sub = submissions_.at(id);
  // Admission runs under the submission's trace: the cache-hit lookup
  // compute and round joins parent beneath the query's root span.
  obs::ScopedTraceContext trace_scope(sub.trace);
  const uint64_t lookup_ops = 16 + sub.prepared.query().size();

  if (options_.enable_cache) {
    auto it = cache_.find(sub.fp);
    if (it != cache_.end()) {
      it->second.last_used = ++cache_tick_;
      metrics_->Increment(m_cache_hits_);
      TraceInstant("cache.hit");
      const bool answer = it->second.answer;
      // A hit costs one coordinator-local lookup: no site is visited
      // and nothing crosses the network.
      if (tracer_ != nullptr) tracer_->SetNextComputeName("cache.lookup");
      session_.backend().Compute(coordinator(), lookup_ops,
                                 [this, id, answer] {
                                   Complete(id, answer, /*cache_hit=*/true,
                                            /*shared=*/false);
                                 });
      sub.prepared = core::PreparedQuery();
      return;
    }
  }

  // Same fingerprint already being evaluated? Ride that round — unless
  // an update landed after the round flushed: this submission arrived
  // after the update, so serving it the round's pre-update evaluation
  // would be a stale answer. Let it start a fresh round instead.
  if (auto it = in_flight_.find(sub.fp);
      it != in_flight_.end() && it->second->epoch == update_epoch_) {
    for (Unique& u : it->second->uniques) {
      if (u.prepared.fingerprint() == sub.fp) {
        u.waiters.push_back(id);
        metrics_->Increment(m_shared_evals_);
        // Joining an already-flushed round: no admission wait ahead.
        metrics_->Observe(m_admission_wait_, 0.0);
        TraceInstant("round.join");
        sub.prepared = core::PreparedQuery();
        return;
      }
    }
  }
  // Same fingerprint already pending in the next batch? Join it.
  if (auto it = pending_index_.find(sub.fp); it != pending_index_.end()) {
    pending_[it->second].waiters.push_back(id);
    metrics_->Increment(m_shared_evals_);
    TraceInstant("round.join");
    sub.prepared = core::PreparedQuery();
    return;
  }

  // Last resort before a round: a cached *longer* query whose QList
  // extends this one can answer it at the coordinator alone.
  if (options_.enable_cache && options_.enable_subsumption &&
      TryServeBySubsumption(id)) {
    return;
  }

  Unique u;
  u.prepared = std::move(sub.prepared);
  u.waiters.push_back(id);
  pending_index_.emplace(sub.fp, pending_.size());
  pending_.push_back(std::move(u));

  if (!options_.enable_batching ||
      pending_.size() >= options_.max_batch_queries ||
      options_.batch_window_seconds <= 0.0) {
    FlushBatch();
  } else {
    ArmBatchTimer();
  }
}

void QueryService::ArmBatchTimer() {
  if (batch_timer_armed_) return;
  batch_timer_armed_ = true;
  // The epoch invalidates this timer if a size-triggered flush beats
  // it: otherwise the stale deadline would truncate the next batch's
  // window.
  const uint64_t epoch = batch_epoch_;
  exec::ExecBackend& backend = session_.backend();
  backend.ScheduleAt(backend.now() + options_.batch_window_seconds,
                     [this, epoch] {
    if (epoch != batch_epoch_) return;  // a flush superseded this timer
    batch_timer_armed_ = false;
    if (!pending_.empty()) FlushBatch();
  });
}

void QueryService::FlushBatch() {
  ++batch_epoch_;
  batch_timer_armed_ = false;
  auto round = std::make_shared<Round>();
  round->uniques = std::move(pending_);
  pending_.clear();
  pending_index_.clear();
  round->epoch = update_epoch_;
  round->start = now();

  // Every waiter in this round has now finished waiting on admission:
  // record how long the batch window held each one (zero when the
  // flush was immediate), and emit its admission.wait span.
  const bool traced = tracer_ != nullptr && tracer_->enabled();
  for (const Unique& u : round->uniques) {
    for (uint64_t wid : u.waiters) {
      auto sit = submissions_.find(wid);
      if (sit == submissions_.end()) continue;
      const Submission& sub = sit->second;
      const double wait = round->start - sub.submitted_seconds;
      metrics_->Observe(m_admission_wait_, wait);
      if (traced && sub.trace.active()) {
        obs::TraceEvent e;
        e.name = "admission.wait";
        e.trace_id = sub.trace.trace_id;
        e.span_id = tracer_->MintSpanId();
        e.parent_id = sub.trace.span_id;
        e.site = coordinator();
        e.ts_seconds = sub.submitted_seconds;
        e.dur_seconds = wait;
        tracer_->Record(std::move(e));
      }
    }
  }
  // The round span adopts the first waiter's trace (one round can
  // carry many traces; the tree follows the one that opened it).
  if (traced && !round->uniques.empty() &&
      !round->uniques[0].waiters.empty()) {
    auto sit = submissions_.find(round->uniques[0].waiters[0]);
    if (sit != submissions_.end() && sit->second.trace.active()) {
      round->parent_span = sit->second.trace.span_id;
      round->trace = {sit->second.trace.trace_id, tracer_->MintSpanId()};
    }
  }

  // An attached view's SplitFragments may have grown the deployment
  // past this service's cluster; Submit guards new arrivals, but
  // already-admitted work must fail cleanly too.
  if (session_.st().num_sites() > session_.backend().num_sites()) {
    if (first_error_.ok()) {
      first_error_ = Status::FailedPrecondition(
          "source tree outgrew the service's cluster mid-run");
    }
    for (Unique& u : round->uniques) {
      for (uint64_t id : u.waiters) Complete(id, false, false, false);
    }
    return;
  }

  // The pre-partitioned per-site plan is computed by the session once
  // per deployment and shared by every round until an update
  // invalidates it; the shared_ptr keeps this round's snapshot alive
  // even if a view re-cuts fragments mid-flight.
  round->plan = session_.plan();
  for (Unique& u : round->uniques) {
    u.equations = AcquireEquations();
    // insert_or_assign: a stale-epoch round for this fingerprint may
    // still be in flight (its entry is dead — the epoch check in
    // Admit refuses joins); the fresh round must take over the key.
    in_flight_.insert_or_assign(u.prepared.fingerprint(), round);
  }
  if (options_.enable_fusion) {
    // Lay the batch out once per round; every site walks each of its
    // fragments ONCE with this layout. The lanes point into the
    // uniques' PreparedQuery-shared QLists, which outlive the round.
    std::vector<const xpath::NormQuery*> queries;
    queries.reserve(round->uniques.size());
    for (const Unique& u : round->uniques) {
      queries.push_back(&u.prepared.query());
    }
    round->fused = core::BuildFusedBatch(queries);
  }
  metrics_->Observe(m_batch_width_,
                    static_cast<double>(round->uniques.size()));
  metrics_->Increment(m_rounds_);
  metrics_->Add(m_unique_evals_, round->uniques.size());
  DispatchRound(std::move(round));
}

void QueryService::DispatchRound(std::shared_ptr<Round> round) {
  if (scheduler_ == nullptr || tenant_id_ < 0) {
    BeginRound(std::move(round));
    return;
  }
  const double enqueued_at = now();
  const uint64_t cost = round->uniques.size();
  const bool immediate = scheduler_->Enqueue(
      tenant_id_, FairScheduler::Lane::kRead, cost,
      [this, round, enqueued_at] {
        // The scheduler may dispatch from another tenant's completion
        // context (their Compose freed the slot); bounce into this
        // service's coordinator context before touching any service
        // state. Every namespace context of a shared host drains on
        // the ONE draining thread, so the cross-namespace ScheduleAt
        // is in-contract on all backends.
        exec::ExecBackend& backend = session_.backend();
        backend.ScheduleAt(backend.now(), [this, round, enqueued_at] {
          metrics_->Observe(m_sched_dispatch_delay_, now() - enqueued_at);
          BeginRound(round);
        });
      });
  if (!immediate) metrics_->Increment(m_sched_deferred_);
}

void QueryService::BeginRound(std::shared_ptr<Round> round) {
  exec::ExecBackend& backend = session_.backend();
  const sim::SiteId coord = coordinator();
  uint64_t batch_query_bytes = 0;
  for (const Unique& u : round->uniques) {
    batch_query_bytes += u.prepared.query_bytes();
  }

  round->pending_sites = static_cast<int>(round->plan->site_fragments.size());

  // The whole fan-out runs under the round's trace: each per-site
  // "query" send span (and the site work hanging off its delivery)
  // parents beneath the round span.
  obs::ScopedTraceContext round_scope(round->trace);

  for (size_t si = 0; si < round->plan->site_fragments.size(); ++si) {
    const sim::SiteId s = round->plan->site_fragments[si].first;
    // One visit per site per round, no matter how many queries ride it.
    backend.RecordVisit(s);
    // Service-side wire meter; coordinator-local hops are free and
    // unmetered, exactly like the substrate's TrafficStats.
    if (s != coord) {
      metrics_->Add(m_query_bytes_, batch_query_bytes);
      metrics_->Increment(m_query_msgs_);
    }
    backend.Send(coord, s, exec::Parcel::OfSize(batch_query_bytes),
                 "query", [this, round, coord, s, si](exec::Parcel) {
      // Site context: evaluate every unique over every local fragment
      // into the *site's* factory, collect the triplets in one batch,
      // and ship a single reply once the last compute drains.
      exec::ExecBackend& backend = session_.backend();
      struct SiteEval {
        size_t remaining = 0;
        std::shared_ptr<exec::TripletBatch> batch;
      };
      const std::vector<frag::FragmentId>& fragments =
          round->plan->site_fragments[si].second;
      auto site = std::make_shared<SiteEval>();
      site->batch = std::make_shared<exec::TripletBatch>();
      // When the site's last compute drains: one reply for the round,
      // its triplets crossing through the wire codec when the backend
      // separates site and coordinator factories. Shared by the fused
      // and per-query paths below.
      auto finish = [this, round, coord, s, site] {
        if (--site->remaining > 0) return;
        exec::ExecBackend& backend = session_.backend();
        exec::Parcel reply = exec::MakeTripletBatchParcel(
            backend.site_factory(s), std::move(site->batch));
        backend.Send(s, coord, std::move(reply), "triplet",
                     [this, round, s, coord](exec::Parcel delivered) {
          if (s != coord) {
            metrics_->Add(m_triplet_bytes_, delivered.wire_bytes());
            metrics_->Increment(m_triplet_msgs_);
          }
          Result<exec::TripletBatch> batch = exec::TakeTripletBatch(
              std::move(delivered), &session_.factory());
          if (!batch.ok()) {
            if (first_error_.ok()) first_error_ = batch.status();
          } else {
            for (exec::TripletBatch::Item& item : batch->items) {
              if (item.key >= round->uniques.size() || item.slot < 0 ||
                  static_cast<size_t>(item.slot) >=
                      round->uniques[item.key].equations.size()) {
                if (first_error_.ok()) {
                  first_error_ =
                      Status::Internal("batch item out of range");
                }
                continue;
              }
              round->uniques[item.key].equations[item.slot] =
                  std::move(item.eq);
            }
          }
          if (--round->pending_sites == 0) {
            Compose(round);
          }
        });
      };
      if (options_.enable_fusion) {
        // ONE bottom-up walk per fragment emits every unique's
        // triplet; compute is charged once per walk. Items land in
        // the same (fragment outer, unique inner) order as the
        // per-query path, so the reply parcel is byte-identical —
        // fusion changes eval-op counts and makespan, nothing else.
        site->remaining = fragments.size();
        for (frag::FragmentId f : fragments) {
          xpath::EvalCounters counters;
          xpath::BatchEvalStats stats;
          std::vector<bexpr::FragmentEquations> eqs;
          if (set_->is_live(f)) {
            // A fragment merged away since the flush snapshot yields
            // empty triplets; the solver then reports Unresolved and
            // the round fails cleanly rather than reading freed nodes.
            eqs = core::PartialEvalFragmentBatch(&backend.site_factory(s),
                                                 round->fused, *set_, f,
                                                 &counters, &stats);
            metrics_->Increment(m_fused_walks_);
            metrics_->Add(m_cse_shared_, stats.shared_entries);
          }
          for (size_t ui = 0; ui < round->uniques.size(); ++ui) {
            exec::TripletBatch::Item item;
            item.key = ui;
            item.slot = f;
            if (!eqs.empty()) item.eq = std::move(eqs[ui]);
            site->batch->items.push_back(std::move(item));
          }
          metrics_->Add(m_ops_, counters.ops);
          if (tracer_ != nullptr) tracer_->SetNextComputeName("site.eval");
          backend.Compute(s, counters.ops, finish);
        }
      } else {
        site->remaining = fragments.size() * round->uniques.size();
        for (frag::FragmentId f : fragments) {
          for (size_t ui = 0; ui < round->uniques.size(); ++ui) {
            const Unique& u = round->uniques[ui];
            // Real partial evaluation, charged to the site's
            // serialized compute queue — exactly the parbox
            // evaluator's per-fragment step.
            xpath::EvalCounters counters;
            exec::TripletBatch::Item item;
            item.key = ui;
            item.slot = f;
            if (set_->is_live(f)) {
              item.eq = core::PartialEvalFragment(
                  &backend.site_factory(s), u.prepared.query(), *set_, f,
                  &counters);
            }
            metrics_->Add(m_ops_, counters.ops);
            site->batch->items.push_back(std::move(item));
            if (tracer_ != nullptr) {
              tracer_->SetNextComputeName("site.eval");
            }
            backend.Compute(s, counters.ops, finish);
          }
        }
      }
    });
  }
}

void QueryService::Compose(std::shared_ptr<Round> round) {
  uint64_t solve_ops = 0;
  for (const Unique& u : round->uniques) {
    solve_ops += u.prepared.query().size() * set_->live_count();
  }
  metrics_->Add(m_ops_, solve_ops);
  // Compose is called from the last triplet's delivery context; scope
  // the round's own trace so the solve compute parents beneath the
  // round span rather than beneath that one site's reply.
  obs::ScopedTraceContext round_scope(round->trace);
  if (tracer_ != nullptr) tracer_->SetNextComputeName("solve");
  session_.backend().Compute(coordinator(), solve_ops, [this, round] {
    for (Unique& u : round->uniques) {
      Result<bool> result = bexpr::SolveForAnswer(
          &session_.factory(), u.equations, round->plan->children,
          set_->root_fragment(), u.prepared.query().root());
      bool answer = false;
      if (result.ok()) {
        answer = *result;
      } else if (first_error_.ok()) {
        first_error_ = result.status();
      }
      // Deregister only if the key still maps to this round — a fresh
      // round may have taken it over after an update staled this one.
      if (auto inf = in_flight_.find(u.prepared.fingerprint());
          inf != in_flight_.end() && inf->second == round) {
        in_flight_.erase(inf);
      }
      std::vector<uint64_t> waiters = std::move(u.waiters);
      // Results computed concurrently with a document update must not
      // persist: the triplets (and possibly the answer) predate it.
      const bool cacheable = result.ok() && round->epoch == update_epoch_;
      if (cacheable) {
        InsertCacheEntry(std::move(u), answer);
      } else {
        ReleaseEquations(std::move(u.equations));
      }
      // waiters[0] is the submission whose query was evaluated; the
      // rest joined it.
      for (size_t w = 0; w < waiters.size(); ++w) {
        Complete(waiters[w], answer, /*cache_hit=*/false,
                 /*shared=*/w > 0);
      }
    }
    // The round span: flush -> all triplets composed and solved.
    if (round->trace.active()) {
      obs::TraceEvent e;
      e.name = "round";
      e.trace_id = round->trace.trace_id;
      e.span_id = round->trace.span_id;
      e.parent_id = round->parent_span;
      e.site = coordinator();
      e.ts_seconds = round->start;
      e.dur_seconds = now() - round->start;
      e.args.emplace_back("uniques",
                          std::to_string(round->uniques.size()));
      e.args.emplace_back(
          "sites", std::to_string(round->plan->site_fragments.size()));
      tracer_->Record(std::move(e));
    }
    // The round's read slot frees here; the scheduler may dispatch
    // another tenant's queued round inside this call (its callback
    // bounces through ScheduleAt, so nothing of that tenant runs in
    // this context).
    if (scheduler_ != nullptr && tenant_id_ >= 0) {
      scheduler_->OnUnitFinished(tenant_id_);
    }
  });
}

void QueryService::Complete(uint64_t id, bool answer, bool cache_hit,
                            bool shared, bool subsumed) {
  auto it = submissions_.find(id);
  if (it == submissions_.end()) return;
  Submission sub = std::move(it->second);
  submissions_.erase(it);

  QueryOutcome outcome;
  outcome.query_id = id;
  outcome.fingerprint = sub.fp;
  outcome.answer = answer;
  outcome.cache_hit = cache_hit;
  outcome.subsumption_hit = subsumed;
  outcome.shared_evaluation = shared && !cache_hit;
  outcome.trace_id = sub.trace.trace_id;
  outcome.submitted_seconds = sub.submitted_seconds;
  outcome.completed_seconds = now();
  const double latency = outcome.latency_seconds();
  metrics_->Increment(m_completed_);
  metrics_->Observe(m_latency_, latency);
  interval_latency_.Add(latency);
  if (sub.trace.active()) {
    // The query's root span: submission to completion.
    obs::TraceEvent e;
    e.name = "query";
    e.trace_id = sub.trace.trace_id;
    e.span_id = sub.trace.span_id;
    e.site = coordinator();
    e.ts_seconds = sub.submitted_seconds;
    e.dur_seconds = latency;
    e.args.emplace_back("answer", answer ? "true" : "false");
    e.args.emplace_back("cache_hit", cache_hit ? "true" : "false");
    e.args.emplace_back("shared",
                        outcome.shared_evaluation ? "true" : "false");
    tracer_->Record(std::move(e));
  }
  if (sink_ != nullptr) {
    const double t = outcome.completed_seconds;
    if (sink_->options().slow_query_seconds > 0.0 &&
        latency >= sink_->options().slow_query_seconds) {
      sink_->SlowQuery(label(), id, sub.trace.trace_id, latency, t);
    }
    if (sink_->DueAt(t)) EmitStatsLine(t);
  }
  outcomes_.push_back(outcome);
  if (sub.done) sub.done(outcomes_.back());
}

double QueryService::Run() { return session_.backend().Drain(); }

// ---- Updates and the result cache --------------------------------------

Result<frag::AppliedDelta> QueryService::ApplyDelta(
    const frag::Delta& delta) {
  // A delta gets its own trace: the session's apply span and every
  // cache evict/refresh instant parent beneath one delta.apply root.
  obs::TraceContext ctx;
  if (tracer_ != nullptr && tracer_->enabled()) {
    ctx = {tracer_->MintTraceId(), tracer_->MintSpanId()};
  }
  obs::ScopedTraceContext trace_scope(ctx);
  const double t0 = now();
  // Session::Apply validates (including writability) and mutates; the
  // fragment it reports dirty is the only one any cached answer could
  // have moved on.
  PARBOX_ASSIGN_OR_RETURN(frag::AppliedDelta applied,
                          session_.Apply(delta));
  OnContentUpdate(applied.fragment);
  if (ctx.active()) {
    obs::TraceEvent e;
    e.name = "delta.apply";
    e.trace_id = ctx.trace_id;
    e.span_id = ctx.span_id;
    e.site = coordinator();
    e.ts_seconds = t0;
    e.dur_seconds = now() - t0;
    e.args.emplace_back("fragment", std::to_string(applied.fragment));
    tracer_->Record(std::move(e));
  }
  return applied;
}

void QueryService::SubmitDelta(frag::Delta delta, double arrival_seconds,
                               UpdateCompletionFn done) {
  const double arrival = std::max(arrival_seconds, now());
  auto shared_delta = std::make_shared<frag::Delta>(std::move(delta));
  session_.backend().ScheduleAt(arrival, [this, shared_delta, done] {
    auto apply = [this, shared_delta, done] {
      Result<frag::AppliedDelta> applied = ApplyDelta(*shared_delta);
      if (!applied.ok() && first_error_.ok()) {
        first_error_ = applied.status();
      }
      if (done) done(applied);
    };
    if (scheduler_ == nullptr || tenant_id_ < 0) {
      apply();
      return;
    }
    // The update priority lane dispatches synchronously — no caps, no
    // queue — so the apply runs now, in this coordinator context,
    // ahead of every read round still waiting for a dispatch slot.
    scheduler_->Enqueue(tenant_id_, FairScheduler::Lane::kUpdate, 1,
                        std::move(apply));
  });
}

Status QueryService::ConfigureTenant(const TenantConfig& config) {
  if (scheduler_ == nullptr || tenant_id_ < 0) {
    return Status::FailedPrecondition(
        "service has no fair-share scheduler attached");
  }
  return scheduler_->Reconfigure(tenant_id_, config);
}

std::vector<bexpr::FragmentEquations> QueryService::AcquireEquations() {
  std::vector<bexpr::FragmentEquations> eqs;
  if (!equations_pool_.empty()) {
    eqs = std::move(equations_pool_.back());
    equations_pool_.pop_back();
    eqs.clear();  // keeps the table-sized element capacity
  }
  eqs.resize(set_->table_size());
  return eqs;
}

void QueryService::ReleaseEquations(
    std::vector<bexpr::FragmentEquations>&& eqs) {
  // Bounded: a pool larger than the biggest possible batch can never
  // be drawn down, so anything beyond it is just retained memory.
  if (eqs.capacity() == 0 ||
      equations_pool_.size() >= options_.max_batch_queries) {
    return;
  }
  equations_pool_.push_back(std::move(eqs));
}

void QueryService::InsertCacheEntry(Unique&& unique, bool answer) {
  if (!options_.enable_cache || options_.cache_capacity == 0) {
    ReleaseEquations(std::move(unique.equations));
    return;
  }
  const xpath::QueryFingerprint fp = unique.prepared.fingerprint();
  CacheEntry entry;
  entry.answer = answer;
  entry.last_used = ++cache_tick_;
  // Keep the solved system: updates splice fresh triplets into it and
  // re-solve instead of discarding the answer wholesale.
  entry.equations = std::move(unique.equations);
  entry.equations.resize(set_->table_size());
  entry.query = std::move(unique.prepared);
  // insert_or_assign may replace a stale entry under the same key;
  // clear its index registrations first so the per-digest key lists
  // never hold a fingerprint twice.
  if (auto it = cache_.find(fp); it != cache_.end()) {
    DeindexEntryPrefixes(fp, it->second);
  }
  IndexEntryPrefixes(fp, entry);
  cache_.insert_or_assign(fp, std::move(entry));
  EvictIfOverCapacity();
}

void QueryService::IndexEntryPrefixes(const xpath::QueryFingerprint& fp,
                                      const CacheEntry& entry) {
  if (!options_.enable_subsumption) return;
  for (const xpath::QueryFingerprint& digest :
       xpath::AllPrefixDigests(entry.query.query())) {
    prefix_index_[digest].push_back(fp);
  }
}

void QueryService::DeindexEntryPrefixes(const xpath::QueryFingerprint& fp,
                                        const CacheEntry& entry) {
  if (!options_.enable_subsumption) return;
  for (const xpath::QueryFingerprint& digest :
       xpath::AllPrefixDigests(entry.query.query())) {
    auto it = prefix_index_.find(digest);
    if (it == prefix_index_.end()) continue;
    std::vector<xpath::QueryFingerprint>& keys = it->second;
    keys.erase(std::remove(keys.begin(), keys.end(), fp), keys.end());
    if (keys.empty()) prefix_index_.erase(it);
  }
}

bool QueryService::TryServeBySubsumption(uint64_t id) {
  Submission& sub = submissions_.at(id);
  const xpath::NormQuery& q = sub.prepared.query();
  // Probe: digest of this query's FULL entry list (no root id) — any
  // cached query extending these entries registered it.
  auto pit = prefix_index_.find(xpath::PrefixDigest(q, q.size()));
  if (pit == prefix_index_.end()) return false;
  // The key list is read by value: completing and re-caching below
  // mutates the index.
  const std::vector<xpath::QueryFingerprint> candidates = pit->second;
  for (const xpath::QueryFingerprint& donor_fp : candidates) {
    auto cit = cache_.find(donor_fp);
    if (cit == cache_.end()) continue;
    CacheEntry& donor = cit->second;
    // The digest narrowed the field; this comparison is the proof.
    if (!xpath::IsQListPrefix(q, donor.query.query())) continue;
    // Only a whole retained system (every live fragment's triplet
    // present, current table shape) can be re-solved — the same
    // wholeness bar RefreshEntry applies.
    if (donor.equations.size() != set_->table_size()) continue;
    const std::vector<frag::FragmentId> live = set_->live_ids();
    bool whole = !live.empty();
    for (frag::FragmentId g : live) {
      if (donor.equations[g].fragment != g ||
          donor.equations[g].v.size() < q.size()) {
        whole = false;
        break;
      }
    }
    if (!whole) continue;

    // Truncate the donor's system to |q| entries. Entry i's formulas
    // reference only variables of index < i (bottomUp evaluates the
    // QList in order), so the truncated system is closed — and it IS
    // the system partial evaluation of `q` itself would emit, because
    // the first |q| entries of the donor's QList ARE `q`'s entries.
    std::vector<bexpr::FragmentEquations> equations = AcquireEquations();
    for (frag::FragmentId g : live) {
      const bexpr::FragmentEquations& src = donor.equations[g];
      bexpr::FragmentEquations& dst = equations[g];
      dst.fragment = g;
      dst.v.assign(src.v.begin(), src.v.begin() + q.size());
      dst.cv.assign(src.cv.begin(), src.cv.begin() + q.size());
      dst.dv.assign(src.dv.begin(), src.dv.begin() + q.size());
    }
    Result<bool> solved = bexpr::SolveForAnswer(
        &session_.factory(), equations, set_->ChildrenTable(),
        set_->root_fragment(), q.root());
    if (!solved.ok()) {
      ReleaseEquations(std::move(equations));
      continue;
    }
    const bool answer = *solved;
    // Coordinator-local solve over the retained formulas: no site is
    // visited, nothing crosses the network. (Sized before sub.prepared
    // is moved into the cache below.)
    const uint64_t solve_ops = 16 + q.size() * live.size();
    donor.last_used = ++cache_tick_;
    metrics_->Increment(m_cache_hits_);
    metrics_->Increment(m_subsumption_hits_);
    TraceInstant("cache.subsume");
    // The answer becomes a first-class entry under its own
    // fingerprint: future submissions of `q` hit exactly, and updates
    // maintain the truncated system like any other.
    Unique u;
    u.prepared = std::move(sub.prepared);
    u.equations = std::move(equations);
    sub.prepared = core::PreparedQuery();
    InsertCacheEntry(std::move(u), answer);
    if (tracer_ != nullptr) tracer_->SetNextComputeName("cache.subsume");
    session_.backend().Compute(coordinator(), solve_ops,
                               [this, id, answer] {
                                 Complete(id, answer, /*cache_hit=*/true,
                                          /*shared=*/false,
                                          /*subsumed=*/true);
                               });
    return true;
  }
  return false;
}

bool QueryService::RefreshEntry(
    CacheEntry* entry, frag::FragmentId f,
    const std::vector<std::vector<int32_t>>& children,
    const std::vector<frag::FragmentId>& live) {
  // An *unnotified* re-cut that changed the fragment table's size is
  // detectable here: the retained system's shape no longer matches.
  // Evict conservatively — the entry's provenance is unknown.
  // (In-contract updates keep shapes in sync: InsertCacheEntry sizes
  // at creation, OnFragmentationUpdate resizes on every notified
  // split/merge. Out-of-band mutations that preserve the table shape
  // are undetectable and outside the service's contract.)
  if (entry->equations.size() != set_->table_size()) return false;
  xpath::EvalCounters counters;
  bexpr::FragmentEquations fresh = core::PartialEvalFragment(
      &session_.factory(), entry->query.query(), *set_, f, &counters);
  // Maintenance work is real compute.
  metrics_->Add(m_ops_, counters.ops);
  return RefreshEntryWith(entry, f, std::move(fresh), children, live);
}

bool QueryService::RefreshEntryWith(
    CacheEntry* entry, frag::FragmentId f, bexpr::FragmentEquations fresh,
    const std::vector<std::vector<int32_t>>& children,
    const std::vector<frag::FragmentId>& live) {
  if (entry->equations.size() != set_->table_size()) return false;
  if (SameTriplet(entry->equations[f], fresh)) {
    return true;  // triplet unchanged => the answer provably stands
  }
  // Re-solving is only meaningful if the retained system covers every
  // live fragment; a hole means unknown provenance — evict rather
  // than re-solve a system that silently ignores a fragment.
  for (frag::FragmentId g : live) {
    if (g != f && entry->equations[g].fragment != g) return false;
  }
  entry->equations[f] = std::move(fresh);
  Result<bool> answer = bexpr::SolveForAnswer(
      &session_.factory(), entry->equations, children,
      set_->root_fragment(), entry->query.query().root());
  if (!answer.ok()) return false;  // malformed system: do not trust it
  if (*answer != entry->answer) return false;
  metrics_->Increment(m_cache_refreshes_);
  TraceInstant("cache.refresh");
  return true;
}

void QueryService::EvictIfOverCapacity() {
  // O(capacity) scan per eviction — at the few-thousand-entry default
  // this is cheaper to reason about than an intrusive LRU list; swap
  // in one if capacities grow by orders of magnitude.
  while (cache_.size() > options_.cache_capacity) {
    auto lru = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    DeindexEntryPrefixes(lru->first, lru->second);
    ReleaseEquations(std::move(lru->second.equations));
    cache_.erase(lru);
  }
}

void QueryService::InvalidateAll() {
  ++update_epoch_;
  metrics_->Add(m_cache_invalidations_, cache_.size());
  cache_.clear();
  prefix_index_.clear();
}

void QueryService::OnContentUpdate(frag::FragmentId f) {
  ++update_epoch_;  // racing rounds must not populate the cache
  if (cache_.empty()) return;
  if (!set_->is_live(f)) return;
  // One children table (and one live-id list) for every entry's
  // re-solve this update — per-entry copies are pure allocation churn
  // at 10k+ fragments.
  const std::vector<std::vector<int32_t>> children =
      set_->ChildrenTable();
  const std::vector<frag::FragmentId> live = set_->live_ids();

  auto evict = [this](decltype(cache_.begin()) it) {
    metrics_->Increment(m_cache_invalidations_);
    TraceInstant("cache.evict");
    DeindexEntryPrefixes(it->first, it->second);
    ReleaseEquations(std::move(it->second.equations));
    return cache_.erase(it);
  };

  if (!options_.enable_fusion) {
    for (auto it = cache_.begin(); it != cache_.end();) {
      // Exact invalidation: splice f's fresh triplet into the entry's
      // retained system and re-solve; evict only if the answer moved.
      if (RefreshEntry(&it->second, f, children, live)) {
        ++it;
      } else {
        it = evict(it);
      }
    }
    return;
  }

  // Fused maintenance: ONE walk of the touched fragment per chunk of
  // up to kMaxFusedLanes cached queries computes every entry's fresh
  // triplet — eval work scales with touched fragments, not cache
  // size. The key snapshot keeps iteration stable across evictions.
  std::vector<xpath::QueryFingerprint> keys;
  keys.reserve(cache_.size());
  for (const auto& [fp, entry] : cache_) keys.push_back(fp);
  for (size_t base = 0; base < keys.size(); base += kMaxFusedLanes) {
    const size_t end = std::min(base + kMaxFusedLanes, keys.size());
    std::vector<xpath::QueryFingerprint> lane_keys;
    std::vector<const xpath::NormQuery*> queries;
    lane_keys.reserve(end - base);
    queries.reserve(end - base);
    for (size_t i = base; i < end; ++i) {
      auto it = cache_.find(keys[i]);
      if (it == cache_.end()) continue;
      lane_keys.push_back(keys[i]);
      queries.push_back(&it->second.query.query());
    }
    if (queries.empty()) continue;
    xpath::EvalCounters counters;
    xpath::BatchEvalStats stats;
    std::vector<bexpr::FragmentEquations> fresh =
        core::PartialEvalFragmentBatch(&session_.factory(), queries, *set_,
                                       f, &counters, &stats);
    // Maintenance work is real compute, charged once per walk.
    metrics_->Add(m_ops_, counters.ops);
    metrics_->Increment(m_fused_walks_);
    metrics_->Add(m_cse_shared_, stats.shared_entries);
    for (size_t k = 0; k < lane_keys.size(); ++k) {
      auto it = cache_.find(lane_keys[k]);
      if (it == cache_.end()) continue;
      if (!RefreshEntryWith(&it->second, f, std::move(fresh[k]), children,
                            live)) {
        evict(it);
      }
    }
  }
}

void QueryService::OnFragmentationUpdate(frag::FragmentId f) {
  ++update_epoch_;
  // The site partition changed shape: recompute the plan on next
  // flush. Rounds in flight keep their snapshot.
  session_.InvalidatePlan();
  if (f < 0 || cache_.empty()) return;
  for (auto& [fp, entry] : cache_) {
    (void)fp;
    entry.equations.resize(set_->table_size());
  }
  if (!set_->is_live(f)) {
    // Merged away: its variables no longer appear anywhere.
    for (auto& [fp, entry] : cache_) {
      (void)fp;
      entry.equations[f] = bexpr::FragmentEquations{};
    }
    return;
  }
  // Split/merge never changes an answer (Sec. 5), so every entry
  // stays; only the re-cut fragment's triplet is refreshed so the
  // retained systems keep matching the current fragmentation. (The
  // counterpart fragment gets its own notification.) Fused: one walk
  // per chunk emits every cached query's fresh triplet.
  if (!options_.enable_fusion) {
    for (auto& [fp, entry] : cache_) {
      (void)fp;
      xpath::EvalCounters counters;
      entry.equations[f] = core::PartialEvalFragment(
          &session_.factory(), entry.query.query(), *set_, f, &counters);
      metrics_->Add(m_ops_, counters.ops);
    }
    return;
  }
  std::vector<CacheEntry*> entries;
  entries.reserve(cache_.size());
  for (auto& [fp, entry] : cache_) {
    (void)fp;
    entries.push_back(&entry);
  }
  for (size_t base = 0; base < entries.size(); base += kMaxFusedLanes) {
    const size_t end = std::min(base + kMaxFusedLanes, entries.size());
    std::vector<const xpath::NormQuery*> queries;
    queries.reserve(end - base);
    for (size_t i = base; i < end; ++i) {
      queries.push_back(&entries[i]->query.query());
    }
    xpath::EvalCounters counters;
    xpath::BatchEvalStats stats;
    std::vector<bexpr::FragmentEquations> fresh =
        core::PartialEvalFragmentBatch(&session_.factory(), queries, *set_,
                                       f, &counters, &stats);
    metrics_->Add(m_ops_, counters.ops);
    metrics_->Increment(m_fused_walks_);
    metrics_->Add(m_cse_shared_, stats.shared_entries);
    for (size_t i = base; i < end; ++i) {
      entries[i]->equations[f] = std::move(fresh[i - base]);
    }
  }
}

Status QueryService::AttachView(core::MaterializedView* view) {
  if (view->fragment_set() != set_) {
    return Status::InvalidArgument(
        "view maintains a different FragmentSet than this service");
  }
  core::UpdateListener listener;
  listener.on_content_update = [this](frag::FragmentId f) {
    OnContentUpdate(f);
  };
  listener.on_fragmentation_update = [this](frag::FragmentId f) {
    OnFragmentationUpdate(f);
  };
  view->SetUpdateListener(std::move(listener));
  // Follow the view's source tree: it is rebuilt in place across
  // fragmentation updates, so the reference stays current. The
  // session's partition plan is invalidated by the rebind.
  session_.RebindSourceTree(&view->source_tree());
  return Status::OK();
}

// ---- Reporting ---------------------------------------------------------

ServiceReport QueryService::BuildReport() const {
  const exec::ExecBackend& backend = session_.backend();
  ServiceReport report;
  report.completed = outcomes_.size();
  report.makespan_seconds = backend.now();
  report.throughput_qps =
      report.makespan_seconds > 0.0
          ? static_cast<double>(report.completed) / report.makespan_seconds
          : 0.0;
  report.latency = metrics_->HistogramValue(m_latency_);
  report.admission_wait = metrics_->HistogramValue(m_admission_wait_);
  report.cache_hits = metrics_->CounterValue(m_cache_hits_);
  report.shared_evaluations = metrics_->CounterValue(m_shared_evals_);
  report.unique_evaluations = metrics_->CounterValue(m_unique_evals_);
  report.rounds = metrics_->CounterValue(m_rounds_);
  report.cache_invalidations =
      metrics_->CounterValue(m_cache_invalidations_);
  report.cache_refreshes = metrics_->CounterValue(m_cache_refreshes_);
  report.fused_walks = metrics_->CounterValue(m_fused_walks_);
  report.cse_shared_exprs = metrics_->CounterValue(m_cse_shared_);
  report.subsumption_hits = metrics_->CounterValue(m_subsumption_hits_);
  report.batch_width = metrics_->HistogramValue(m_batch_width_);
  const sim::TrafficStats& traffic = backend.traffic();
  report.network_bytes = traffic.total_bytes();
  report.network_messages = traffic.total_messages();
  for (uint64_t v : backend.visits()) report.total_visits += v;
  report.total_ops = metrics_->CounterValue(m_ops_);
  report.interned_formula_nodes = session_.factory().total_nodes();
  report.sched_deferred = metrics_->CounterValue(m_sched_deferred_);
  report.sched_dispatch_delay =
      metrics_->HistogramValue(m_sched_dispatch_delay_);
  for (const auto& [tag, bytes] : traffic.bytes_by_tag()) {
    report.stats.Add("net." + tag + ".bytes", bytes);
  }
  backend.AddBackendStats(&report.stats);
  return report;
}

obs::MetricsSnapshot QueryService::SnapshotMetrics() const {
  const exec::ExecBackend& backend = session_.backend();
  const std::string& p = options_.metrics_prefix;
  // Inject the substrate's wire meters as point-in-time gauges next to
  // the service's own counters (idempotent across snapshots; the
  // counter twins "net.<tag>.*" are metered live by the service and
  // must agree — tests/obs_test.cc holds them equal).
  const sim::TrafficStats& traffic = backend.traffic();
  for (const auto& [tag, bytes] : traffic.bytes_by_tag()) {
    metrics_->SetGauge(p + "exec.net." + tag + ".bytes",
                       static_cast<double>(bytes));
  }
  for (const auto& [tag, msgs] : traffic.messages_by_tag()) {
    metrics_->SetGauge(p + "exec.net." + tag + ".messages",
                       static_cast<double>(msgs));
  }
  uint64_t visits = 0;
  for (uint64_t v : backend.visits()) visits += v;
  metrics_->SetGauge(p + "exec.visits", static_cast<double>(visits));
  metrics_->SetGauge(p + "exec.busy_seconds",
                     backend.total_busy_seconds());
  // Substrate-specific counters (thread-pool steals, proc-backend
  // frames/retries/reconnects, ...) ride along under the same "exec."
  // namespace, except keys that already carry it.
  StatsRegistry backend_stats;
  backend.AddBackendStats(&backend_stats);
  for (const auto& [name, value] : backend_stats.counters()) {
    const std::string gauge =
        name.rfind("exec.", 0) == 0 ? name : "exec." + name;
    metrics_->SetGauge(p + gauge, static_cast<double>(value));
  }
  metrics_->SetGauge(p + "service.cache_size",
                     static_cast<double>(cache_.size()));
  if (scheduler_ != nullptr && tenant_id_ >= 0) {
    const FairScheduler::TenantStats s = scheduler_->Stats(tenant_id_);
    metrics_->SetGauge(p + "sched.queue_depth",
                       static_cast<double>(s.queue_depth));
    metrics_->SetGauge(p + "sched.peak_queue_depth",
                       static_cast<double>(s.peak_queue_depth));
    metrics_->SetGauge(p + "sched.in_flight",
                       static_cast<double>(s.in_flight));
    metrics_->SetGauge(p + "sched.weight", s.config.weight);
  }
  return metrics_->Snapshot();
}

void QueryService::FlushStats() {
  if (sink_ == nullptr) return;
  EmitStatsLine(now());
}

void QueryService::EmitStatsLine(double now_seconds) {
  // Coordinator-thread shard only: every counter read here is written
  // exclusively from coordinator context, so this is exact and safe
  // mid-run (no cross-shard merge while workers are hot).
  const uint64_t completed = metrics_->LocalCounterValue(m_completed_);
  const uint64_t hits = metrics_->LocalCounterValue(m_cache_hits_);
  const uint64_t qbytes = metrics_->LocalCounterValue(m_query_bytes_);
  const uint64_t tbytes = metrics_->LocalCounterValue(m_triplet_bytes_);
  const double dt = now_seconds - sink_cursor_.t;
  const uint64_t dc = completed - sink_cursor_.completed;
  const uint64_t dh = hits - sink_cursor_.hits;
  const double qps = dt > 0.0 ? static_cast<double>(dc) / dt : 0.0;
  const double hit_pct =
      dc > 0 ? 100.0 * static_cast<double>(dh) / static_cast<double>(dc)
             : 0.0;
  const double p50_ms =
      interval_latency_.count() > 0
          ? interval_latency_.Percentile(50) * 1e3
          : 0.0;
  const double p99_ms =
      interval_latency_.count() > 0
          ? interval_latency_.Percentile(99) * 1e3
          : 0.0;
  std::ostringstream line;
  line << "[" << label() << "] t=" << std::fixed << std::setprecision(2)
       << now_seconds << "s qps=" << std::setprecision(1) << qps
       << " p50=" << std::setprecision(3) << p50_ms
       << "ms p99=" << std::setprecision(3) << p99_ms
       << "ms cache_hit=" << std::setprecision(1) << hit_pct
       << "% bytes{query=" << HumanBytes(qbytes - sink_cursor_.query_bytes)
       << ",triplet=" << HumanBytes(tbytes - sink_cursor_.triplet_bytes)
       << "}";
  if (scheduler_ != nullptr && tenant_id_ >= 0) {
    // Scheduler pressure at line time: rounds queued behind the
    // dispatch caps right now.
    line << " q=" << scheduler_->Stats(tenant_id_).queue_depth;
  }
  sink_->Line(line.str());
  sink_cursor_ = {now_seconds, completed, hits, qbytes, tbytes};
  interval_latency_ = obs::Histogram();
}

void QueryService::TraceInstant(const char* name) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (!ctx.active()) return;
  obs::TraceEvent e;
  e.name = name;
  e.trace_id = ctx.trace_id;
  e.parent_id = ctx.span_id;
  e.site = coordinator();
  e.ts_seconds = now();
  tracer_->Record(std::move(e));
}

std::string ServiceReport::ToString() const {
  std::ostringstream out;
  out << "QueryService: " << completed << " queries in "
      << makespan_seconds << "s  (" << throughput_qps << " q/s)\n";
  out << "  latency ms: " << latency.Summary("", 1e3) << "\n";
  out << "  admission wait ms: " << admission_wait.Summary("", 1e3)
      << "\n";
  out << "  cache hits " << cache_hits << " (subsumption "
      << subsumption_hits << "), shared evals " << shared_evaluations
      << ", unique evals " << unique_evaluations << ", rounds " << rounds
      << ", invalidations " << cache_invalidations << ", refreshes "
      << cache_refreshes << "\n";
  out << "  fusion: " << fused_walks << " fused walks, "
      << cse_shared_exprs << " cross-query shared exprs, batch width "
      << batch_width.Summary("", 1.0) << "\n";
  out << "  network " << HumanBytes(network_bytes) << " in "
      << network_messages << " msgs, site visits " << total_visits
      << ", ops " << total_ops << ", interned formula nodes "
      << interned_formula_nodes;
  if (sched_dispatch_delay.count() > 0) {
    out << "\n  fair-share: dispatch delay ms "
        << sched_dispatch_delay.Summary("", 1e3) << ", deferred rounds "
        << sched_deferred;
  }
  if (!per_document.empty()) {
    out << "\n  per-document:";
    for (const DocumentRow& row : per_document) {
      std::ostringstream doc;
      doc << "\n    " << row.name << ": " << row.completed
          << " completed, " << row.qps << " q/s, p50 "
          << row.p50_seconds * 1e3 << "ms, p99 " << row.p99_seconds * 1e3
          << "ms";
      if (row.sched_deferred > 0) {
        doc << ", deferred " << row.sched_deferred;
      }
      out << doc.str();
    }
  }
  return out.str();
}

}  // namespace parbox::service
