#include "service/workload.h"

#include <cmath>
#include <memory>

#include "xmark/queries.h"

namespace parbox::service {

namespace {

/// Family portfolios: entry i belongs to family i / variants and is
/// that family's (i % variants)-th member — member 0 the unqualified
/// base chain, the rest qualified variants. Each family's chain is
/// one step longer than the previous family's.
Result<xpath::NormQuery> MaterializeFamily(const WorkloadSpec& spec,
                                           size_t index) {
  const int family = static_cast<int>(index) / spec.family_variants;
  const int member = static_cast<int>(index) % spec.family_variants;
  return xmark::MakeFamilyQuery(spec.family_chain_steps + family,
                                member - 1);
}

}  // namespace

Result<Workload> Workload::Make(const WorkloadSpec& spec) {
  if (spec.distinct_queries < 1) {
    return Status::InvalidArgument("workload needs at least one query");
  }
  if (spec.family_variants > 0 && spec.family_chain_steps < 1) {
    return Status::InvalidArgument("family chains need at least one step");
  }
  if (spec.family_variants == 0 && spec.min_qlist_size < 2) {
    return Status::InvalidArgument("smallest supported |QList| is 2");
  }
  if (!(spec.hot_multiplier > 0.0) ||
      !std::isfinite(spec.hot_multiplier)) {
    return Status::InvalidArgument(
        "hot_multiplier must be positive and finite");
  }
  if (!std::isfinite(spec.doc_zipf_s)) {
    return Status::InvalidArgument("doc_zipf_s must be finite");
  }
  Workload w;
  w.spec_ = spec;
  for (int i = 0; i < spec.distinct_queries; ++i) {
    // Fail fast if any portfolio entry cannot be built.
    if (spec.family_variants > 0) {
      PARBOX_ASSIGN_OR_RETURN(xpath::NormQuery q,
                              MaterializeFamily(spec, i));
      (void)q;
    } else {
      PARBOX_ASSIGN_OR_RETURN(
          xpath::NormQuery q,
          xmark::MakeQueryOfQListSize(spec.min_qlist_size + i));
      (void)q;
    }
    w.weights_.push_back(std::pow(1.0 / (i + 1), spec.zipf_s));
  }
  return w;
}

Result<xpath::NormQuery> Workload::Materialize(size_t index) const {
  if (index >= size()) return Status::InvalidArgument("no such entry");
  if (spec_.family_variants > 0) {
    return MaterializeFamily(spec_, index);
  }
  return xmark::MakeQueryOfQListSize(spec_.min_qlist_size +
                                     static_cast<int>(index));
}

std::vector<size_t> Workload::DrawIndices(size_t n, Rng* rng) const {
  std::vector<size_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(rng->Weighted(weights_));
  return out;
}

Result<ServiceReport> RunOpenLoop(QueryService* service,
                                  const Workload& workload,
                                  const OpenLoopOptions& options) {
  Rng rng(options.seed);
  const std::vector<size_t> indices =
      workload.DrawIndices(options.num_queries, &rng);
  double arrival = service->now();
  for (size_t index : indices) {
    if (options.arrival_rate_qps > 0.0) {
      // Poisson process: exponential interarrival times.
      arrival += -std::log(1.0 - rng.UniformDouble()) /
                 options.arrival_rate_qps;
    }
    PARBOX_ASSIGN_OR_RETURN(xpath::NormQuery q,
                            workload.Materialize(index));
    PARBOX_ASSIGN_OR_RETURN(uint64_t id,
                            service->Submit(std::move(q), arrival));
    (void)id;
  }
  service->Run();
  PARBOX_RETURN_IF_ERROR(service->status());
  return service->BuildReport();
}

Result<ServiceReport> RunClosedLoopWith(QueryService* service,
                                        const QueryFactory& make_query,
                                        size_t num_queries, int concurrency,
                                        double think_seconds) {
  if (concurrency < 1) {
    return Status::InvalidArgument("need at least one client");
  }
  struct DriverState {
    size_t total;
    size_t next = 0;
    Status error = Status::OK();
  };
  auto state = std::make_shared<DriverState>();
  state->total = num_queries;

  // Submits the next sequence entry; a no-op once exhausted. Owned by
  // shared_ptr so completion callbacks can re-enter it.
  auto submit_next = std::make_shared<std::function<void(double)>>();
  *submit_next = [service, &make_query, think_seconds, state,
                  submit_next](double arrival) {
    if (!state->error.ok() || state->next >= state->total) return;
    Result<xpath::NormQuery> q = make_query(state->next++);
    if (!q.ok()) {
      state->error = q.status();
      return;
    }
    Result<uint64_t> id = service->Submit(
        std::move(*q), arrival,
        [service, think_seconds, state, submit_next](const QueryOutcome&) {
          (*submit_next)(service->now() + think_seconds);
        });
    if (!id.ok()) state->error = id.status();
  };

  const size_t initial =
      std::min(static_cast<size_t>(concurrency), num_queries);
  for (size_t i = 0; i < initial; ++i) (*submit_next)(service->now());

  service->Run();
  // Break the submit_next <-> lambda reference cycle.
  *submit_next = nullptr;
  PARBOX_RETURN_IF_ERROR(state->error);
  PARBOX_RETURN_IF_ERROR(service->status());
  return service->BuildReport();
}

CrossDocPlan MakeCrossDocPlan(const Workload& workload, size_t num_docs,
                              const CrossDocOptions& options) {
  CrossDocPlan plan;
  if (num_docs == 0) return plan;
  const WorkloadSpec& spec = workload.spec();
  std::vector<double> doc_weights;
  doc_weights.reserve(num_docs);
  for (size_t i = 0; i < num_docs; ++i) {
    double weight =
        std::pow(1.0 / static_cast<double>(i + 1), spec.doc_zipf_s);
    if (i == 0) weight *= spec.hot_multiplier;
    doc_weights.push_back(weight);
  }
  Rng rng(options.seed);
  plan.items.reserve(options.num_queries);
  double arrival = 0.0;
  for (size_t i = 0; i < options.num_queries; ++i) {
    if (options.arrival_rate_qps > 0.0) {
      // One aggregate Poisson process; each arrival lands on a
      // document by the skew law, so the hot document sees
      // proportionally more of the SAME stream (not an independent,
      // faster clock — exactly how skewed tenant traffic shares a
      // front door).
      arrival += -std::log(1.0 - rng.UniformDouble()) /
                 options.arrival_rate_qps;
    }
    CrossDocPlan::Item item;
    item.doc = rng.Weighted(doc_weights);
    item.query = workload.DrawIndices(1, &rng)[0];
    item.arrival = arrival;
    plan.items.push_back(item);
  }
  return plan;
}

Result<ServiceReport> RunCrossDocOpenLoop(
    CatalogService* service, const Workload& workload,
    const std::vector<std::string>& docs, const CrossDocPlan& plan) {
  for (const CrossDocPlan::Item& item : plan.items) {
    if (item.doc >= docs.size()) {
      return Status::InvalidArgument(
          "plan names document index " + std::to_string(item.doc) +
          " but only " + std::to_string(docs.size()) + " were given");
    }
    PARBOX_ASSIGN_OR_RETURN(xpath::NormQuery q,
                            workload.Materialize(item.query));
    PARBOX_ASSIGN_OR_RETURN(
        uint64_t id,
        service->Submit(docs[item.doc], std::move(q), item.arrival));
    (void)id;
  }
  service->Run();
  PARBOX_RETURN_IF_ERROR(service->status());
  return service->BuildAggregateReport();
}

Result<ServiceReport> RunClosedLoop(QueryService* service,
                                    const Workload& workload,
                                    const ClosedLoopOptions& options,
                                    std::vector<size_t>* indices_out) {
  Rng rng(options.seed);
  const std::vector<size_t> indices =
      workload.DrawIndices(options.num_queries, &rng);
  PARBOX_ASSIGN_OR_RETURN(
      ServiceReport report,
      RunClosedLoopWith(
          service,
          [&](size_t i) { return workload.Materialize(indices[i]); },
          options.num_queries, options.concurrency,
          options.think_seconds));
  if (indices_out != nullptr) *indices_out = indices;
  return report;
}

}  // namespace parbox::service
