// FairScheduler: weighted fair-share admission across the tenants
// (documents) sharing one execution substrate.
//
// The catalog serves N documents on one backend host; before this
// layer, admission was strictly FIFO — one hot tenant's burst queued
// ahead of everyone and nothing protected a cold tenant's p99. The
// scheduler replaces that with deficit-weighted round robin (DWRR)
// over per-tenant queues:
//
//   * Each tenant has a weight and an optional per-tenant in-flight
//     cap; the scheduler also enforces a small global in-flight cap —
//     the contention point that makes weights matter at all (with
//     unlimited slots every round dispatches immediately and the
//     policy is vacuous).
//   * A dispatch *unit* is one batch round; its cost is the round's
//     distinct-query count, so a tenant flushing wide rounds drains
//     its deficit proportionally faster than one flushing singletons.
//   * Reads queue per tenant and dispatch by DWRR: each visit tops the
//     tenant's deficit up by quantum x weight and dispatches queued
//     rounds while the deficit covers their cost (classic Shreedhar &
//     Varghese). Updates ride a priority lane: they bypass the queues
//     and caps entirely and dispatch immediately, so write visibility
//     is never stuck behind a backlog of reads.
//
// The scheduler changes WHEN a round starts, never what it computes:
// a deferred round evaluates the document content current at dispatch
// time, exactly like a round whose batch timer fired later (the
// backend differential suite holds scheduler on/off bit-identical
// across sim, threads, and proc:2).
//
// Threading: dispatch callbacks fire synchronously inside Enqueue /
// OnUnitFinished, on whatever execution context called them. Services
// bounce the callback through ExecBackend::ScheduleAt into their own
// coordinator context (all namespace contexts of a shared host drain
// on one thread, so the cross-namespace hop is safe on every
// backend). A mutex guards the queues anyway so the scheduler itself
// is context-agnostic.

#ifndef PARBOX_SERVICE_SCHEDULER_H_
#define PARBOX_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace parbox::service {

/// Per-tenant admission configuration.
struct TenantConfig {
  /// Relative share of dispatch slots under contention. Must be
  /// positive and finite (ValidateTenantConfig).
  double weight = 1.0;
  /// Per-tenant cap on concurrently dispatched read rounds; 0 = no
  /// per-tenant cap (the global cap still applies).
  size_t max_in_flight = 0;
};

/// Rejects non-positive / non-finite weights with a message naming
/// the offending value (config errors should say what to fix).
Status ValidateTenantConfig(const TenantConfig& config);

struct FairSchedulerOptions {
  /// Global cap on concurrently dispatched read rounds across all
  /// tenants — the contention point that makes weights bite.
  size_t max_in_flight = 4;
  /// Deficit added per DWRR visit is quantum x weight, in round-cost
  /// units (distinct queries per round).
  double quantum = 1.0;
};

/// Deficit-weighted round-robin dispatcher. See file comment.
class FairScheduler {
 public:
  using TenantId = int32_t;
  enum class Lane { kUpdate, kRead };

  /// Point-in-time view of one tenant's scheduler state.
  struct TenantStats {
    std::string name;
    TenantConfig config;
    size_t queue_depth = 0;       ///< reads queued, not yet dispatched
    size_t peak_queue_depth = 0;  ///< high-water mark of queue_depth
    size_t in_flight = 0;         ///< dispatched, not yet finished
    uint64_t enqueued = 0;        ///< read units ever enqueued
    uint64_t dispatched = 0;      ///< read units ever dispatched
    uint64_t deferred = 0;        ///< read units that had to queue
  };

  explicit FairScheduler(const FairSchedulerOptions& options = {});

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Register a tenant. Fails on invalid config.
  Result<TenantId> AddTenant(std::string name, const TenantConfig& config);

  /// Replace `tenant`'s weight/cap. Takes effect on the next dispatch
  /// decision; already-queued units keep their positions.
  Status Reconfigure(TenantId tenant, const TenantConfig& config);

  /// Hand one unit of work to the scheduler. Updates (Lane::kUpdate)
  /// dispatch immediately — no caps, no deficit, no finish
  /// accounting. Reads dispatch immediately when a slot is free and
  /// the tenant is within its cap, else queue until OnUnitFinished
  /// frees capacity. `cost` is the unit's size in deficit units (a
  /// round's distinct-query count; clamped to >= 1). Returns true iff
  /// `dispatch` ran before Enqueue returned (i.e. the unit was not
  /// deferred). Per-tenant dispatch order is FIFO.
  bool Enqueue(TenantId tenant, Lane lane, uint64_t cost,
               std::function<void()> dispatch);

  /// A read unit previously dispatched for `tenant` completed; frees
  /// its slot and pumps the queues (dispatch callbacks for other
  /// tenants may run inside this call).
  void OnUnitFinished(TenantId tenant);

  TenantStats Stats(TenantId tenant) const;
  size_t num_tenants() const;
  /// Dispatched-but-unfinished read units across all tenants.
  size_t total_in_flight() const;

 private:
  struct Unit {
    uint64_t cost = 1;
    std::function<void()> dispatch;
  };

  struct Tenant {
    std::string name;
    TenantConfig config;
    std::deque<Unit> reads;
    double deficit = 0.0;
    size_t in_flight = 0;
    size_t peak_queue_depth = 0;
    uint64_t enqueued = 0;
    uint64_t dispatched = 0;
    uint64_t deferred = 0;
  };

  bool EligibleLocked(const Tenant& t) const {
    return !t.reads.empty() &&
           (t.config.max_in_flight == 0 ||
            t.in_flight < t.config.max_in_flight);
  }

  /// Move every currently dispatchable unit from the queues into
  /// `out` (slot accounting updated under the lock); callbacks run
  /// outside the lock by the caller. The `pumping_` guard collapses
  /// re-entrant pumps (a dispatch callback calling Enqueue /
  /// OnUnitFinished) into one outer loop.
  void PumpLocked(std::vector<Unit>* out);
  void Pump();

  const FairSchedulerOptions options_;
  mutable std::mutex mu_;
  std::vector<Tenant> tenants_;
  size_t total_in_flight_ = 0;
  size_t cursor_ = 0;  ///< DWRR position in tenants_
  /// True when the cursor tenant's drain was cut short by the global
  /// slot cap (not by its deficit): the next pump resumes that
  /// tenant's visit without topping its deficit up again, so a small
  /// max_in_flight can't flatten the weight ratio to 1:1.
  bool mid_visit_ = false;
  bool pumping_ = false;
  bool repump_ = false;
};

}  // namespace parbox::service

#endif  // PARBOX_SERVICE_SCHEDULER_H_
