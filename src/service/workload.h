// Workload generation and arrival-process drivers for a QueryService.
//
// A Workload is a portfolio of distinct queries (over the XMark-like
// vocabulary, sized by |QList|) plus a zipf-skewed popularity: heavy
// traffic from many users is not many *different* questions but a few
// popular ones asked again and again — exactly what the service's
// fingerprint cache and batch dedup exploit.
//
// Two classic arrival processes drive a service (common/rng keeps both
// reproducible from a seed):
//
//   * open loop   — Poisson arrivals at a fixed rate (or everything
//                   at t=0 for a burst), regardless of completions;
//   * closed loop — a fixed number of concurrent clients, each
//                   submitting its next query (after optional think
//                   time) only when the previous one completes.

#ifndef PARBOX_SERVICE_WORKLOAD_H_
#define PARBOX_SERVICE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "service/catalog_service.h"
#include "service/query_service.h"
#include "xpath/qlist.h"

namespace parbox::service {

struct WorkloadSpec {
  /// Portfolio entries; entry i is the deterministic XMark query with
  /// |QList| = min_qlist_size + i.
  int distinct_queries = 16;
  int min_qlist_size = 2;
  /// Popularity skew: entry i drawn with weight 1/(i+1)^zipf_s.
  /// 0 = uniform.
  double zipf_s = 1.0;
  /// > 0 switches the portfolio to query *families*
  /// (xmark::MakeFamilyQuery): consecutive runs of `family_variants`
  /// entries share one descendant-chain template — the first member
  /// is the unqualified base, the rest append divergent label
  /// qualifiers. Entries within a family are maximally fusable
  /// (shared QList prefix) and the base is subsumption-answerable
  /// from any cached variant; successive families use chains one
  /// step longer. 0 (default) keeps the classic size-swept portfolio.
  int family_variants = 0;
  /// Chain length of the first family's template (family f uses
  /// family_chain_steps + f steps). Only read when family_variants
  /// > 0.
  int family_chain_steps = 6;

  // ---- Cross-document skew (MakeCrossDocPlan) ----

  /// Document-popularity skew across a catalog: document i is drawn
  /// with weight 1/(i+1)^doc_zipf_s. 0 = uniform.
  double doc_zipf_s = 0.0;
  /// Extra load multiplier on document 0 — "one hot doc at 10x load,
  /// many cold" is doc_zipf_s = 0, hot_multiplier = 10 x (num_docs-1)
  /// relative share. Must be > 0.
  double hot_multiplier = 1.0;
};

/// A fixed portfolio of distinct queries with a popularity law.
class Workload {
 public:
  static Result<Workload> Make(const WorkloadSpec& spec);

  size_t size() const { return weights_.size(); }
  const WorkloadSpec& spec() const { return spec_; }

  /// A fresh copy of portfolio entry `index` (NormQuery is move-only,
  /// so every submission materializes its own).
  Result<xpath::NormQuery> Materialize(size_t index) const;

  /// Draw `n` portfolio indices by popularity.
  std::vector<size_t> DrawIndices(size_t n, Rng* rng) const;

 private:
  WorkloadSpec spec_;
  std::vector<double> weights_;
};

struct OpenLoopOptions {
  size_t num_queries = 256;
  /// Mean arrival rate; 0 = all queries arrive at t = now (burst).
  double arrival_rate_qps = 0.0;
  uint64_t seed = 42;
};

struct ClosedLoopOptions {
  size_t num_queries = 256;
  /// Concurrent clients (in-flight queries).
  int concurrency = 64;
  double think_seconds = 0.0;
  uint64_t seed = 42;
};

/// Submit `indices` (or a freshly drawn sequence) open-loop, run the
/// service to completion and return its report.
Result<ServiceReport> RunOpenLoop(QueryService* service,
                                  const Workload& workload,
                                  const OpenLoopOptions& options);

/// Drive the service with a fixed population of clients: the i-th
/// completion triggers the next submission. Runs to completion.
/// `indices_out`, if non-null, receives the portfolio index of each
/// submission in submission (= query id) order.
Result<ServiceReport> RunClosedLoop(QueryService* service,
                                    const Workload& workload,
                                    const ClosedLoopOptions& options,
                                    std::vector<size_t>* indices_out =
                                        nullptr);

/// Produces the query for submission number `i` (0-based).
using QueryFactory =
    std::function<Result<xpath::NormQuery>(size_t submission)>;

/// Closed-loop drive with a caller-supplied query source instead of a
/// Workload portfolio (e.g. parboxq --serve re-asks one query text).
Result<ServiceReport> RunClosedLoopWith(QueryService* service,
                                        const QueryFactory& make_query,
                                        size_t num_queries, int concurrency,
                                        double think_seconds);

// ---- Cross-document (multi-tenant) driving ----

struct CrossDocOptions {
  size_t num_queries = 256;
  /// Aggregate Poisson arrival rate across ALL documents; 0 = burst
  /// at t = 0.
  double arrival_rate_qps = 0.0;
  uint64_t seed = 42;
};

/// One pre-drawn cross-document arrival sequence: (document, portfolio
/// entry, arrival time) triples. Drawn ONCE and replayed, so scheduler
/// on/off (or FIFO vs fair-share) runs see the byte-identical
/// submission stream — the differential suite's precondition.
struct CrossDocPlan {
  struct Item {
    size_t doc = 0;    ///< index into the caller's document list
    size_t query = 0;  ///< Workload portfolio entry
    double arrival = 0.0;
  };
  std::vector<Item> items;
};

/// Draw a plan: documents by the spec's doc_zipf_s/hot_multiplier
/// law, queries by the portfolio's zipf law, Poisson aggregate
/// interarrivals (or a t=0 burst).
CrossDocPlan MakeCrossDocPlan(const Workload& workload, size_t num_docs,
                              const CrossDocOptions& options);

/// Submit `plan` against `service` (plan doc i -> docs[i]), run the
/// shared substrate to completion, and return the aggregate report
/// (per-document rows included).
Result<ServiceReport> RunCrossDocOpenLoop(
    CatalogService* service, const Workload& workload,
    const std::vector<std::string>& docs, const CrossDocPlan& plan);

}  // namespace parbox::service

#endif  // PARBOX_SERVICE_WORKLOAD_H_
