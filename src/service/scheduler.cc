#include "service/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace parbox::service {

Status ValidateTenantConfig(const TenantConfig& config) {
  if (!std::isfinite(config.weight)) {
    return Status::InvalidArgument(
        "tenant weight must be finite, got " +
        std::to_string(config.weight));
  }
  if (config.weight <= 0.0) {
    return Status::InvalidArgument(
        "tenant weight must be positive, got " +
        std::to_string(config.weight) +
        " (use max_in_flight to throttle a tenant, not weight 0)");
  }
  if (config.weight < 1e-6) {
    return Status::InvalidArgument(
        "tenant weight must be >= 1e-6, got " +
        std::to_string(config.weight) +
        " (smaller weights make DWRR rotations unbounded)");
  }
  return Status::OK();
}

FairScheduler::FairScheduler(const FairSchedulerOptions& options)
    : options_(options) {}

Result<FairScheduler::TenantId> FairScheduler::AddTenant(
    std::string name, const TenantConfig& config) {
  PARBOX_RETURN_IF_ERROR(ValidateTenantConfig(config));
  std::lock_guard<std::mutex> lock(mu_);
  Tenant t;
  t.name = std::move(name);
  t.config = config;
  tenants_.push_back(std::move(t));
  return static_cast<TenantId>(tenants_.size() - 1);
}

Status FairScheduler::Reconfigure(TenantId tenant,
                                  const TenantConfig& config) {
  PARBOX_RETURN_IF_ERROR(ValidateTenantConfig(config));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenant < 0 || static_cast<size_t>(tenant) >= tenants_.size()) {
      return Status::InvalidArgument("no such tenant: " +
                                     std::to_string(tenant));
    }
    tenants_[static_cast<size_t>(tenant)].config = config;
  }
  // A raised cap or weight may make queued units dispatchable now.
  Pump();
  return Status::OK();
}

bool FairScheduler::Enqueue(TenantId tenant, Lane lane, uint64_t cost,
                            std::function<void()> dispatch) {
  // Updates are the priority lane: they bypass queues and caps so
  // write visibility never waits behind a read backlog. Fire and
  // forget — no slot is held, OnUnitFinished is not expected.
  if (lane == Lane::kUpdate) {
    dispatch();
    return true;
  }
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenant < 0 || static_cast<size_t>(tenant) >= tenants_.size()) {
      // Unknown tenant degrades to scheduler-off semantics rather
      // than dropping work on the floor.
      dispatch();
      return true;
    }
    Tenant& t = tenants_[static_cast<size_t>(tenant)];
    seq = t.enqueued++;
    Unit u;
    u.cost = std::max<uint64_t>(cost, 1);
    u.dispatch = std::move(dispatch);
    t.reads.push_back(std::move(u));
    t.peak_queue_depth = std::max(t.peak_queue_depth, t.reads.size());
  }
  Pump();
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = tenants_[static_cast<size_t>(tenant)];
  // Per-tenant dispatch is FIFO, so unit `seq` ran iff the dispatch
  // counter moved past it.
  const bool dispatched = t.dispatched > seq;
  if (!dispatched) ++t.deferred;
  return dispatched;
}

void FairScheduler::OnUnitFinished(TenantId tenant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenant < 0 || static_cast<size_t>(tenant) >= tenants_.size()) {
      return;
    }
    Tenant& t = tenants_[static_cast<size_t>(tenant)];
    if (t.in_flight > 0) --t.in_flight;
    if (total_in_flight_ > 0) --total_in_flight_;
  }
  Pump();
}

void FairScheduler::PumpLocked(std::vector<Unit>* out) {
  if (tenants_.empty()) return;
  auto dispatch_head = [&](Tenant* t) {
    Unit u = std::move(t->reads.front());
    t->reads.pop_front();
    ++t->in_flight;
    ++t->dispatched;
    ++total_in_flight_;
    out->push_back(std::move(u));
  };
  while (total_in_flight_ < options_.max_in_flight) {
    size_t eligible = 0;
    size_t only = 0;
    for (size_t i = 0; i < tenants_.size(); ++i) {
      if (EligibleLocked(tenants_[i])) {
        ++eligible;
        only = i;
      }
    }
    if (eligible == 0) return;
    if (eligible == 1) {
      // Work-conserving shortcut: with no competition, deficit
      // bookkeeping would only delay the lone queue.
      dispatch_head(&tenants_[only]);
      if (tenants_[only].reads.empty()) tenants_[only].deficit = 0.0;
      continue;
    }
    // DWRR visit. A visit cut short by the global slot cap resumes at
    // the same tenant WITHOUT a fresh top-up (otherwise a tight cap
    // would let every tenant dispatch exactly one unit per slot-free
    // and flatten the weight ratio to 1:1); otherwise advance to the
    // next eligible tenant and top its deficit up by quantum x weight.
    if (!mid_visit_ || !EligibleLocked(tenants_[cursor_])) {
      mid_visit_ = false;
      while (!EligibleLocked(tenants_[cursor_])) {
        cursor_ = (cursor_ + 1) % tenants_.size();
      }
      tenants_[cursor_].deficit +=
          options_.quantum * tenants_[cursor_].config.weight;
    }
    Tenant& t = tenants_[cursor_];
    while (EligibleLocked(t) &&
           total_in_flight_ < options_.max_in_flight &&
           t.deficit >= static_cast<double>(t.reads.front().cost)) {
      t.deficit -= static_cast<double>(t.reads.front().cost);
      dispatch_head(&t);
    }
    // An idle tenant accumulates no credit (standard DWRR: deficit
    // resets when the queue drains, so bursts can't bank history).
    if (t.reads.empty()) t.deficit = 0.0;
    mid_visit_ = EligibleLocked(t) &&
                 total_in_flight_ >= options_.max_in_flight &&
                 t.deficit >= static_cast<double>(t.reads.front().cost);
    if (!mid_visit_) cursor_ = (cursor_ + 1) % tenants_.size();
  }
}

void FairScheduler::Pump() {
  std::unique_lock<std::mutex> lock(mu_);
  if (pumping_) {
    // A dispatch callback re-entered (Enqueue / OnUnitFinished from
    // inside a dispatch); the outer loop below will pick the new
    // state up.
    repump_ = true;
    return;
  }
  pumping_ = true;
  for (;;) {
    repump_ = false;
    std::vector<Unit> ready;
    PumpLocked(&ready);
    if (ready.empty() && !repump_) break;
    lock.unlock();
    for (Unit& u : ready) u.dispatch();
    lock.lock();
  }
  pumping_ = false;
}

FairScheduler::TenantStats FairScheduler::Stats(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  TenantStats stats;
  if (tenant < 0 || static_cast<size_t>(tenant) >= tenants_.size()) {
    return stats;
  }
  const Tenant& t = tenants_[static_cast<size_t>(tenant)];
  stats.name = t.name;
  stats.config = t.config;
  stats.queue_depth = t.reads.size();
  stats.peak_queue_depth = t.peak_queue_depth;
  stats.in_flight = t.in_flight;
  stats.enqueued = t.enqueued;
  stats.dispatched = t.dispatched;
  stats.deferred = t.deferred;
  return stats;
}

size_t FairScheduler::num_tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

size_t FairScheduler::total_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_in_flight_;
}

}  // namespace parbox::service
