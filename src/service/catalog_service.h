// CatalogService: QueryService over a catalog — many documents, one
// execution substrate.
//
// One QueryService serves one document. A CatalogService serves every
// document of a catalog::Catalog: per document it stands up a
// QueryService whose Session joins the catalog's BackendHost as a site
// namespace, so N documents share ONE worker pool (threads) or ONE
// virtual clock + event loop (sim) instead of N clusters — and the
// per-document figures stay exactly those of dedicated services
// (tests/catalog_test.cc holds answers, visits, and bytes
// bit-identical per document; bench_x10_multidoc_service gates the
// aggregate-throughput win of sharing the pool).
//
//   * Submit(doc, query, ...) — admission scoped to the named
//     document; batching, dedup, and the result cache work per
//     document (the cache is fingerprint-keyed inside each document's
//     service, i.e. effectively keyed by (document, fingerprint)).
//   * Run() — drains the SHARED substrate once: all documents' rounds
//     interleave on the same workers/clock.
//   * ApplyDelta(doc, delta) — the live-update path, scoped per
//     document; exact answer-granularity cache maintenance as in
//     QueryService.
//   * Move(doc, f, site) — live fragment migration while serving: the
//     catalog re-homes f (placement epoch bump + fresh snapshot), the
//     service ships the fragment's content old-site -> new-site as a
//     metered "migrate" message, and the document's session re-ships
//     only f's retained state. No answer changes; cached entries keep
//     serving.
//   * Rebalance(doc) — the load-aware policy: reads the document's
//     per-site visit/byte meters off its namespace and applies
//     frag::ProposeRebalance's moves.
//
// The catalog must outlive the service; documents being served must
// not be Close()d before DropDocument.

#ifndef PARBOX_SERVICE_CATALOG_SERVICE_H_
#define PARBOX_SERVICE_CATALOG_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "fragment/placement.h"
#include "obs/metrics.h"
#include "service/query_service.h"

namespace parbox::service {

class CatalogService {
 public:
  using CompletionFn = QueryService::CompletionFn;

  /// Serves every document currently open on `*catalog`; documents
  /// opened later join via ServeDocument. `options.backend` and
  /// `options.host` are ignored — the substrate is the catalog's.
  static Result<std::unique_ptr<CatalogService>> Create(
      catalog::Catalog* catalog, const ServiceOptions& options = {});

  CatalogService(const CatalogService&) = delete;
  CatalogService& operator=(const CatalogService&) = delete;
  /// Drains the shared substrate first: queued work (e.g. a Move's
  /// migration transfer) may reference the per-document backends
  /// destroyed here.
  ~CatalogService();

  /// Start serving a document opened after Create.
  Status ServeDocument(std::string_view name);
  /// Stop serving (before catalog::Catalog::Close). Outcomes already
  /// recorded stay in the dropped service until it is destroyed here.
  Status DropDocument(std::string_view name);

  /// Enqueue `q` against document `doc` at virtual/real `arrival
  /// seconds` on the shared clock. Unknown documents fail with the
  /// served names listed.
  Result<uint64_t> Submit(std::string_view doc, xpath::NormQuery q,
                          double arrival_seconds,
                          CompletionFn done = nullptr);

  /// Drain the shared substrate (every document's outstanding work and
  /// timers). Returns the substrate's clock.
  double Run();

  /// Typed content delta against `doc` (exact per-document cache
  /// maintenance, as QueryService::ApplyDelta).
  Result<frag::AppliedDelta> ApplyDelta(std::string_view doc,
                                        const frag::Delta& delta);

  /// Scheduled delta against `doc`: arrives on the shared clock and
  /// applies through the fair-share scheduler's update priority lane
  /// (ahead of queued reads; see QueryService::SubmitDelta).
  Status SubmitDelta(std::string_view doc, frag::Delta delta,
                     double arrival_seconds,
                     QueryService::UpdateCompletionFn done = nullptr);

  /// Re-weight / re-cap document `doc` on the catalog-wide fair-share
  /// scheduler. Fails when fair share is off (enable_fair_share) or
  /// the config is invalid (zero/negative weight).
  Status ConfigureTenant(std::string_view doc, const TenantConfig& config);

  /// The catalog-wide fair-share scheduler; null when
  /// enable_fair_share was off at Create.
  FairScheduler* scheduler() { return scheduler_.get(); }

  /// Live migration of `f` to `site` within `doc` (see file comment).
  /// Returns the site `f` moved from.
  Result<frag::SiteId> Move(std::string_view doc, frag::FragmentId f,
                            frag::SiteId site);

  /// Load-aware rebalance of `doc`: propose moves from its namespace's
  /// per-site visit/byte meters (frag::ProposeRebalance) and apply
  /// each through Move. Returns how many fragments moved.
  Result<size_t> Rebalance(std::string_view doc,
                           const frag::RebalanceOptions& options = {});

  /// The document's dedicated serving state (cache, outcomes,
  /// metrics); nullptr when not served.
  QueryService* document_service(std::string_view doc);
  const QueryService* document_service(std::string_view doc) const;

  std::vector<std::string> served() const;

  /// Per-document metrics — exactly what the document's dedicated
  /// QueryService would report.
  Result<ServiceReport> BuildReport(std::string_view doc) const;
  /// Counters summed across documents; latency distribution pooled.
  /// Makespan is the shared substrate's clock; throughput is aggregate
  /// completions over it.
  ServiceReport BuildAggregateReport() const;

  /// First internal failure across every served document.
  Status status() const;

  catalog::Catalog* catalog() { return catalog_; }

  /// The registry every served document reports into (one namespace
  /// per document: "d0.service.completed", "d1.net.query.bytes", ...,
  /// matching the host's traffic-tag prefixes). The caller's when
  /// ServiceOptions::metrics was set at Create, otherwise the
  /// catalog-owned one.
  obs::MetricsRegistry& metrics() {
    return options_.metrics != nullptr ? *options_.metrics : metrics_;
  }

 private:
  struct Served {
    catalog::Document* document = nullptr;
    std::unique_ptr<QueryService> service;
    /// Cumulative "migrate" payload bytes shipped into each site by
    /// our own Moves; Rebalance subtracts them from the load signal so
    /// a migration does not make its destination look hot and bounce
    /// the fragment right back.
    std::vector<uint64_t> migrate_bytes_into{};
  };

  explicit CatalogService(catalog::Catalog* catalog,
                          const ServiceOptions& options)
      : catalog_(catalog), options_(options) {}

  Result<Served*> Find(std::string_view doc);
  Result<const Served*> Find(std::string_view doc) const;

  catalog::Catalog* catalog_;
  ServiceOptions options_;
  /// Shared registry for every document's service (used when the
  /// caller passed none). Declared before served_ so it outlives the
  /// services reporting into it.
  obs::MetricsRegistry metrics_;
  /// The catalog-wide fair-share scheduler (enable_fair_share); every
  /// served document is a tenant on it. Declared before served_ so it
  /// outlives the services enqueuing into it.
  std::unique_ptr<FairScheduler> scheduler_;
  std::map<std::string, Served, std::less<>> served_;
};

}  // namespace parbox::service

#endif  // PARBOX_SERVICE_CATALOG_SERVICE_H_
