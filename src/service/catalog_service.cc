#include "service/catalog_service.h"

#include <algorithm>
#include <utility>

namespace parbox::service {

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined.empty() ? "<none>" : joined;
}

}  // namespace

Result<std::unique_ptr<CatalogService>> CatalogService::Create(
    catalog::Catalog* catalog, const ServiceOptions& options) {
  auto service = std::unique_ptr<CatalogService>(
      new CatalogService(catalog, options));
  if (options.enable_fair_share) {
    service->scheduler_ =
        std::make_unique<FairScheduler>(options.fair_share);
  }
  for (const std::string& name : catalog->names()) {
    PARBOX_RETURN_IF_ERROR(service->ServeDocument(name));
  }
  return service;
}

Status CatalogService::ServeDocument(std::string_view name) {
  catalog::Document* doc = catalog_->Find(name);
  if (doc == nullptr) {
    return Status::NotFound("document \"" + std::string(name) +
                            "\" is not open on the catalog");
  }
  if (served_.count(name) > 0) {
    return Status::InvalidArgument("document \"" + std::string(name) +
                                   "\" is already being served");
  }
  ServiceOptions options = options_;
  options.host = catalog_->host();
  options.network = catalog_->options().network;
  // All documents report into one registry, namespaced to match the
  // host's traffic-tag prefix for the namespace this service is about
  // to claim ("d<N>." — host.cc assigns them in AddNamespace order).
  options.metrics = &metrics();
  options.metrics_prefix =
      "d" + std::to_string(catalog_->host()->num_namespaces()) + ".";
  options.name = std::string(name);
  // Fair-share admission: every document is a tenant on the ONE
  // catalog-wide DWRR scheduler — the cross-document round planner
  // that makes a shared Run() interleave documents proportionally to
  // weight instead of draining them in submission order.
  options.scheduler = scheduler_.get();
  PARBOX_ASSIGN_OR_RETURN(
      std::unique_ptr<QueryService> qs,
      QueryService::Create(doc->mutable_set(), doc->source_tree().get(),
                           options));
  qs->FollowPlacement(doc->feed());
  served_.emplace(std::string(name),
                  Served{doc, std::move(qs)});
  return Status::OK();
}

CatalogService::~CatalogService() {
  // Queued work on the shared substrate (a Move's migration transfer,
  // straggling submissions) may hold pointers into the per-document
  // services destroyed below; finish it first.
  catalog_->host()->backend().Drain();
}

Status CatalogService::DropDocument(std::string_view name) {
  auto it = served_.find(name);
  if (it == served_.end()) {
    return Status::NotFound("document \"" + std::string(name) +
                            "\" is not being served");
  }
  // The dropped service's namespace backend dies with it; drain so no
  // queued task (migration transfers, in-flight rounds) outlives it.
  catalog_->host()->backend().Drain();
  served_.erase(it);
  return Status::OK();
}

Result<CatalogService::Served*> CatalogService::Find(std::string_view doc) {
  auto it = served_.find(doc);
  if (it == served_.end()) {
    return Status::NotFound("document \"" + std::string(doc) +
                            "\" is not served; serving: " +
                            JoinNames(served()));
  }
  return &it->second;
}

Result<const CatalogService::Served*> CatalogService::Find(
    std::string_view doc) const {
  auto it = served_.find(doc);
  if (it == served_.end()) {
    return Status::NotFound("document \"" + std::string(doc) +
                            "\" is not served; serving: " +
                            JoinNames(served()));
  }
  return &it->second;
}

Result<uint64_t> CatalogService::Submit(std::string_view doc,
                                        xpath::NormQuery q,
                                        double arrival_seconds,
                                        CompletionFn done) {
  PARBOX_ASSIGN_OR_RETURN(Served * s, Find(doc));
  return s->service->Submit(std::move(q), arrival_seconds,
                            std::move(done));
}

double CatalogService::Run() {
  return catalog_->host()->backend().Drain();
}

Result<frag::AppliedDelta> CatalogService::ApplyDelta(
    std::string_view doc, const frag::Delta& delta) {
  PARBOX_ASSIGN_OR_RETURN(Served * s, Find(doc));
  return s->service->ApplyDelta(delta);
}

Status CatalogService::SubmitDelta(std::string_view doc,
                                   frag::Delta delta,
                                   double arrival_seconds,
                                   QueryService::UpdateCompletionFn done) {
  PARBOX_ASSIGN_OR_RETURN(Served * s, Find(doc));
  s->service->SubmitDelta(std::move(delta), arrival_seconds,
                          std::move(done));
  return Status::OK();
}

Status CatalogService::ConfigureTenant(std::string_view doc,
                                       const TenantConfig& config) {
  if (scheduler_ == nullptr) {
    return Status::FailedPrecondition(
        "fair share is off for this catalog service "
        "(ServiceOptions::enable_fair_share)");
  }
  PARBOX_ASSIGN_OR_RETURN(Served * s, Find(doc));
  return s->service->ConfigureTenant(config);
}

Result<frag::SiteId> CatalogService::Move(std::string_view doc,
                                          frag::FragmentId f,
                                          frag::SiteId site) {
  PARBOX_ASSIGN_OR_RETURN(Served * s, Find(doc));
  PARBOX_ASSIGN_OR_RETURN(frag::SiteId from, s->document->Move(f, site));
  if (from != site) {
    // The migration transfer: the fragment's content ships old site ->
    // new site once, metered like any other message on the document's
    // namespace. Retained state (cached answers, triplets) stays
    // valid; the session re-ships only f's state via its dirty log.
    // The zero-op Compute hop puts the Send in the old site's
    // execution context, as the backend contract requires.
    exec::ExecBackend* backend = &s->service->backend();
    const uint64_t bytes = s->document->set().FragmentSerializedBytes(f);
    backend->Compute(from, 0, [backend, from, site, bytes] {
      backend->Send(from, site, exec::Parcel::OfSize(bytes), "migrate",
                    [](exec::Parcel) {});
    });
    if (s->migrate_bytes_into.size() <= static_cast<size_t>(site)) {
      s->migrate_bytes_into.resize(static_cast<size_t>(site) + 1, 0);
    }
    s->migrate_bytes_into[static_cast<size_t>(site)] += bytes;
    s->service->SyncPlacement();
    if (options_.tracer != nullptr && options_.tracer->enabled()) {
      // A migration is its own causal root (nothing submitted it).
      obs::TraceEvent e;
      e.name = "placement.move";
      e.trace_id = options_.tracer->MintTraceId();
      e.site = from;
      e.ts_seconds = backend->now();
      e.args.emplace_back("doc", std::string(doc));
      e.args.emplace_back("fragment", std::to_string(f));
      e.args.emplace_back("to", std::to_string(site));
      e.args.emplace_back("bytes", std::to_string(bytes));
      options_.tracer->Record(std::move(e));
    }
    if (options_.sink != nullptr) {
      options_.sink->Line("[" + std::string(doc) + "] placement.move f=" +
                          std::to_string(f) + " " + std::to_string(from) +
                          "->" + std::to_string(site) +
                          " bytes=" + std::to_string(bytes));
    }
  }
  return from;
}

Result<size_t> CatalogService::Rebalance(
    std::string_view doc, const frag::RebalanceOptions& options) {
  PARBOX_ASSIGN_OR_RETURN(Served * s, Find(doc));
  // The namespace-scoped meters: exactly this document's share of the
  // shared substrate's visits and received bytes.
  exec::ExecBackend& backend = s->service->backend();
  const std::vector<uint64_t> visits = backend.visits();
  const sim::TrafficStats& traffic = backend.traffic();
  std::vector<uint64_t> bytes_in(visits.size(), 0);
  for (size_t site = 0; site < bytes_in.size(); ++site) {
    bytes_in[site] = traffic.bytes_into(static_cast<int32_t>(site));
    // Discount our own migration payloads: they are one-time transfers
    // we caused, not serving load on the destination.
    if (site < s->migrate_bytes_into.size()) {
      const uint64_t migrated = s->migrate_bytes_into[site];
      bytes_in[site] -= std::min(bytes_in[site], migrated);
    }
  }
  const std::vector<frag::ProposedMove> moves = frag::ProposeRebalance(
      s->document->set(), s->document->placement(), visits, bytes_in,
      options);
  size_t applied = 0;
  for (const frag::ProposedMove& move : moves) {
    PARBOX_ASSIGN_OR_RETURN(frag::SiteId from,
                            Move(doc, move.fragment, move.to));
    (void)from;
    ++applied;
  }
  return applied;
}

QueryService* CatalogService::document_service(std::string_view doc) {
  auto it = served_.find(doc);
  return it == served_.end() ? nullptr : it->second.service.get();
}

const QueryService* CatalogService::document_service(
    std::string_view doc) const {
  auto it = served_.find(doc);
  return it == served_.end() ? nullptr : it->second.service.get();
}

std::vector<std::string> CatalogService::served() const {
  std::vector<std::string> out;
  out.reserve(served_.size());
  for (const auto& [name, s] : served_) out.push_back(name);
  return out;
}

Result<ServiceReport> CatalogService::BuildReport(
    std::string_view doc) const {
  PARBOX_ASSIGN_OR_RETURN(const Served* s, Find(doc));
  return s->service->BuildReport();
}

ServiceReport CatalogService::BuildAggregateReport() const {
  ServiceReport total;
  total.makespan_seconds = catalog_->host()->backend().now();
  for (const auto& [name, s] : served_) {
    const ServiceReport r = s.service->BuildReport();
    // Per-document row: the document's share of the aggregate (qps
    // over the SHARED makespan, so rows sum to the aggregate rate;
    // percentiles from the document's own latency histogram).
    ServiceReport::DocumentRow row;
    row.name = name;
    row.completed = r.completed;
    row.qps = total.makespan_seconds > 0.0
                  ? static_cast<double>(r.completed) /
                        total.makespan_seconds
                  : 0.0;
    if (r.latency.count() > 0) {
      row.p50_seconds = r.latency.Percentile(50);
      row.p99_seconds = r.latency.Percentile(99);
    }
    row.sched_deferred = r.sched_deferred;
    total.per_document.push_back(std::move(row));
    total.sched_deferred += r.sched_deferred;
    total.sched_dispatch_delay.Merge(r.sched_dispatch_delay);
    total.completed += r.completed;
    total.cache_hits += r.cache_hits;
    total.shared_evaluations += r.shared_evaluations;
    total.unique_evaluations += r.unique_evaluations;
    total.rounds += r.rounds;
    total.cache_invalidations += r.cache_invalidations;
    total.cache_refreshes += r.cache_refreshes;
    total.network_bytes += r.network_bytes;
    total.network_messages += r.network_messages;
    total.total_visits += r.total_visits;
    total.total_ops += r.total_ops;
    total.interned_formula_nodes += r.interned_formula_nodes;
    total.latency.Merge(r.latency);
    total.admission_wait.Merge(r.admission_wait);
    for (const auto& [tag, value] : r.stats.counters()) {
      total.stats.Add(tag, value);
    }
  }
  total.throughput_qps =
      total.makespan_seconds > 0.0
          ? static_cast<double>(total.completed) / total.makespan_seconds
          : 0.0;
  return total;
}

Status CatalogService::status() const {
  for (const auto& [name, s] : served_) {
    if (!s.service->status().ok()) return s.service->status();
  }
  return Status::OK();
}

}  // namespace parbox::service
