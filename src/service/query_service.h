// QueryService: a long-lived serving layer over one execution backend.
//
// Where the Run* entry points of core/algorithms.h build a fresh
// substrate per query, a QueryService owns one exec::ExecBackend for
// its lifetime — the deterministic simulated cluster by default, a
// real thread pool under {.backend = "threads"} — and serves a
// *stream* of queries — the paper's cost model
// (each site visited once, O(|q|·card(F)) traffic per query) amortized
// across concurrent traffic:
//
//   * Admission. Submit() schedules a query's arrival on the virtual
//     clock; a WorkloadDriver (service/workload.h) feeds open- or
//     closed-loop arrival processes.
//   * Per-site batching. Queries admitted within a batching window are
//     evaluated in one *round*: each site is visited once per round —
//     a single "query" message carries the QLists of every distinct
//     query in the batch, the site partially evaluates all of them
//     over each of its fragments, and a single "triplet" reply ships
//     all partial answers back. Per-visit latency and per-message
//     overhead are shared by the whole batch, and identical queries
//     (by fingerprint) are evaluated once no matter how many
//     submissions asked. All formula work shares the service's one
//     hash-consing ExprFactory, so structurally overlapping queries in
//     a batch reuse each other's interned subformulas and triplets.
//   * Result cache. Answers are cached under the query's canonical
//     fingerprint (xpath/fingerprint.h). A hit completes at the
//     coordinator with zero site visits and zero network traffic.
//     Each entry *retains the triplet equation system* its answer was
//     solved from. Updates — typed deltas through ApplyDelta, or
//     MaterializedView update operations via AttachView — re-evaluate
//     only the touched fragment under each cached query, splice the
//     fresh triplet into the retained system, and re-solve: an entry
//     is evicted only when its *answer* actually changed (Sec. 5's
//     maintenance test, sharpened from triplet identity to answer
//     identity). Entries whose triplet changed but whose answer stood
//     are refreshed in place and keep serving hits.
//   * Reporting. Per-query outcomes aggregate into a ServiceReport:
//     throughput, p50/p95/p99 latency (common/stats Distribution),
//     cache and batching counters, and the usual traffic breakdown.
//
// The service is built on a core::Session (core/session.h): the
// session owns the cluster, the shared hash-consing ExprFactory, and
// the per-site partition plan; Submit runs Session::Prepare (validate
// + fingerprint once), batch rounds snapshot Session::plan(), and the
// admitted work is carried as core::PreparedQuery handles.
//
// Answers are computed by the same partial-evaluation kernel and
// equation solver as the "parbox" evaluator, so they are bit-identical
// to a standalone run (verified in tests/service_test.cc and
// bench_x6_service_throughput).

#ifndef PARBOX_SERVICE_QUERY_SERVICE_H_
#define PARBOX_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "boolexpr/solver.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/prepared.h"
#include "core/session.h"
#include "core/view.h"
#include "exec/backend.h"
#include "fragment/delta.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "service/scheduler.h"
#include "sim/cluster.h"
#include "xpath/eval_batch.h"
#include "xpath/fingerprint.h"
#include "xpath/qlist.h"

namespace parbox::service {

struct ServiceOptions {
  sim::NetworkParams network{};
  /// Execution substrate (exec/backend.h registry spec): "sim" for the
  /// deterministic simulated cluster (default), "threads[:N]" for the
  /// real worker pool — the latter turns the service into a measurably
  /// parallel server (bench_x9_backend_throughput). Defaults to
  /// $PARBOX_BACKEND when set.
  std::string backend = exec::DefaultBackendSpec();
  /// When set, serve on this shared multi-document substrate instead
  /// of a dedicated backend (`backend` is then ignored): the service's
  /// sites become a namespace on the host — how a CatalogService runs
  /// N documents on one worker pool. The host must outlive the
  /// service.
  exec::BackendHost* host = nullptr;

  // ---- Fair-share admission (service/scheduler.h) ----

  /// When set, batch rounds dispatch through this shared fair-share
  /// scheduler instead of starting immediately at flush (a
  /// CatalogService passes its catalog-wide scheduler so documents
  /// interleave by weight). Null = FIFO admission, exactly the
  /// pre-scheduler service (ablation baseline). Must outlive the
  /// service. Answer-exact either way: the scheduler changes when a
  /// round starts, never what it computes.
  FairScheduler* scheduler = nullptr;
  /// This service's tenant registration (weight, per-tenant in-flight
  /// cap). Only read when `scheduler` is set; invalid configs fail
  /// construction (surface through Create / status()).
  TenantConfig tenant;
  /// CatalogService only: stand up a catalog-owned FairScheduler with
  /// `fair_share` below and pass it to every served document (each
  /// registered with `tenant` as its starting config; re-weight per
  /// document via CatalogService::ConfigureTenant). Ignored by a bare
  /// QueryService — pass `scheduler` directly there.
  bool enable_fair_share = false;
  FairSchedulerOptions fair_share;

  /// Merge concurrently admitted queries into per-site batch rounds.
  /// Off: every admission is its own round (ablation baseline).
  bool enable_batching = true;
  /// Serve repeated queries from the fingerprint-keyed result cache.
  bool enable_cache = true;
  /// Evaluate a round's distinct queries in ONE fused walk per
  /// fragment (xpath/eval_batch.h) instead of one walk per
  /// (fragment × query), and batch cache-maintenance re-evaluation
  /// the same way. Answers, visits, and wire bytes are bit-identical
  /// either way (the fused kernel is id-exact); only eval-op counts
  /// and makespan change. Off: per-query walks (ablation baseline).
  bool enable_fusion = true;
  /// Answer a query whose QList is an entry-wise *prefix* of a cached
  /// query's by re-solving the cached entry's retained equation
  /// system, truncated, under the shorter query's root — zero site
  /// visits. Requires enable_cache. Off: prefix queries evaluate
  /// normally (ablation baseline).
  bool enable_subsumption = true;

  /// How long admission holds a batch open for stragglers before the
  /// round starts. Default: two one-way LAN latencies.
  double batch_window_seconds = 2e-4;
  /// Start the round early once this many distinct queries pend.
  size_t max_batch_queries = 64;
  /// Cache entries kept; least-recently-used evicted beyond this.
  size_t cache_capacity = 4096;

  // ---- Observability (src/obs/) ----

  /// Per-query trace spans (admission wait, round, per-site visit,
  /// solve); must outlive the service. Defaults to the $PARBOX_TRACE
  /// environment tracer, i.e. null — tracing structurally absent —
  /// unless that variable is set.
  obs::Tracer* tracer = obs::DefaultTracer();
  /// Metrics registry to report into (a CatalogService shares one
  /// across documents); the service owns a private one when null. Must
  /// outlive the service when set.
  obs::MetricsRegistry* metrics = nullptr;
  /// Prefix for every metric this service interns ("d0." under a
  /// catalog, matching the backend host's traffic-tag prefixes).
  std::string metrics_prefix;
  /// Periodic stats lines and the slow-query log; borrowed, may be
  /// shared by several services on one shared backend host.
  obs::StatsSink* sink = nullptr;
  /// Display label for sink lines and slow-query records; "svc" when
  /// empty (a catalog passes the document name).
  std::string name;
};

/// What one submission experienced, start to finish.
struct QueryOutcome {
  uint64_t query_id = 0;
  xpath::QueryFingerprint fingerprint;
  bool answer = false;
  /// Served from the result cache (no site visited).
  bool cache_hit = false;
  /// Cache hit of the *subsumption* kind: answered by re-solving a
  /// longer cached query's retained equation system (implies
  /// cache_hit).
  bool subsumption_hit = false;
  /// Shared another submission's evaluation of the same fingerprint.
  bool shared_evaluation = false;
  /// The query's trace id (0 when untraced) — the key into the
  /// tracer's Breakdown and the slow-query log.
  uint64_t trace_id = 0;
  double submitted_seconds = 0.0;
  double completed_seconds = 0.0;
  double latency_seconds() const {
    return completed_seconds - submitted_seconds;
  }
};

/// Aggregated service-level metrics over every completed query.
struct ServiceReport {
  size_t completed = 0;
  double makespan_seconds = 0.0;
  double throughput_qps = 0.0;
  /// Per-query latency in seconds.
  obs::Histogram latency;
  /// Time submissions waited in the admission batch window before
  /// their round flushed (cache hits excluded; in-flight joiners
  /// observe zero).
  obs::Histogram admission_wait;

  uint64_t cache_hits = 0;
  uint64_t shared_evaluations = 0;  ///< submissions that rode a dup
  uint64_t unique_evaluations = 0;  ///< distinct (fingerprint) evals run
  uint64_t rounds = 0;              ///< batch rounds executed
  uint64_t cache_invalidations = 0;
  /// Entries whose triplet changed under an update but whose re-solved
  /// answer stood: refreshed in place instead of evicted.
  uint64_t cache_refreshes = 0;
  /// Fused bottom-up walks run (one per fragment per round / per
  /// maintenance chunk when fusion is on — vs one per fragment × query
  /// without it).
  uint64_t fused_walks = 0;
  /// (element × QList entry) evaluations served by cross-query
  /// prefix sharing inside fused walks instead of being re-derived.
  uint64_t cse_shared_exprs = 0;
  /// Queries answered by cache subsumption (zero site visits).
  uint64_t subsumption_hits = 0;
  /// Distinct queries per batch round (the fused batch width).
  obs::Histogram batch_width;

  uint64_t network_bytes = 0;
  uint64_t network_messages = 0;
  uint64_t total_visits = 0;
  uint64_t total_ops = 0;
  uint64_t interned_formula_nodes = 0;

  /// Rounds the fair-share scheduler queued instead of dispatching at
  /// flush (0 without a scheduler — FIFO never defers).
  uint64_t sched_deferred = 0;
  /// Flush-to-dispatch wait per round under the scheduler (every
  /// round observes one sample; 0 for immediate dispatch).
  obs::Histogram sched_dispatch_delay;

  /// Per-document breakdown, filled by
  /// CatalogService::BuildAggregateReport (empty on a
  /// single-document report).
  struct DocumentRow {
    std::string name;
    size_t completed = 0;
    double qps = 0.0;
    double p50_seconds = 0.0;
    double p99_seconds = 0.0;
    uint64_t sched_deferred = 0;
  };
  std::vector<DocumentRow> per_document;

  /// Traffic by tag ("net.query.bytes", ...), RunReport-style.
  StatsRegistry stats;

  std::string ToString() const;
};

class QueryService {
 public:
  using CompletionFn = std::function<void(const QueryOutcome&)>;

  /// The service evaluates against `*set` distributed per `*st`; both
  /// must outlive it. The simulated cluster spans st->num_sites()
  /// machines and the service runs at the root fragment's site. The
  /// mutable overload additionally accepts ApplyDelta (live updates
  /// interleaved with reads).
  QueryService(const frag::FragmentSet* set, const frag::SourceTree* st,
               const ServiceOptions& options = {});
  QueryService(frag::FragmentSet* set, const frag::SourceTree* st,
               const ServiceOptions& options = {});

  /// Validating factories: a bad ServiceOptions::backend spec (unknown
  /// name, threads:0) fails HERE — construction time, with the
  /// registered backends listed — instead of on the first Submit.
  static Result<std::unique_ptr<QueryService>> Create(
      const frag::FragmentSet* set, const frag::SourceTree* st,
      const ServiceOptions& options = {});
  static Result<std::unique_ptr<QueryService>> Create(
      frag::FragmentSet* set, const frag::SourceTree* st,
      const ServiceOptions& options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueue `q` to arrive at virtual time `arrival_seconds` (clamped
  /// to now()). `done`, if given, runs at completion — closed-loop
  /// drivers use it to submit the next query. Returns the query id.
  Result<uint64_t> Submit(xpath::NormQuery q, double arrival_seconds,
                          CompletionFn done = nullptr);

  /// Drain the event loop (serve everything submitted, including
  /// queries submitted by completion callbacks). Returns virtual now().
  double Run();

  double now() const { return session_.backend().now(); }
  /// The execution substrate the service runs on.
  exec::ExecBackend& backend() { return session_.backend(); }
  const exec::ExecBackend& backend() const { return session_.backend(); }
  /// First internal failure, if any (malformed equation system).
  const Status& status() const { return first_error_; }

  /// Completed queries, in completion order.
  const std::vector<QueryOutcome>& outcomes() const { return outcomes_; }
  ServiceReport BuildReport() const;

  /// The registry this service's meters live in (shared or owned).
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  /// Snapshot the registry, first injecting the substrate's wire
  /// meters ("<prefix>exec.net.<tag>.bytes", visits, busy seconds) and
  /// point-in-time gauges (cache size) — one export covering the
  /// service and exec layers. Quiescent reads only (after Run()).
  obs::MetricsSnapshot SnapshotMetrics() const;
  /// Force the final interval line out of the configured sink (no-op
  /// without one); parboxq --serve calls this after Run().
  void FlushStats();

  // ---- Updates and result-cache maintenance ----

  /// Apply a typed content delta to the live document (requires the
  /// mutable constructor), then invalidate *exactly*: every cached
  /// entry re-solves with the touched fragment's fresh triplet and is
  /// evicted only if its answer changed. Safe to call between rounds
  /// and from completion callbacks. Consistency contract: the *cache*
  /// never serves a stale answer (rounds racing the update are barred
  /// from populating it by an epoch guard, and submissions arriving
  /// after the update never join a pre-update round) — but a read
  /// already in flight when the delta lands races it, and its one
  /// delivered answer may reflect the document before, after, or (for
  /// multi-delta races) a fragment-wise mix of update states, exactly
  /// like a reader overlapping a writer in any non-transactional
  /// store.
  Result<frag::AppliedDelta> ApplyDelta(const frag::Delta& delta);

  /// Completion callback for SubmitDelta.
  using UpdateCompletionFn =
      std::function<void(const Result<frag::AppliedDelta>&)>;
  /// Schedule `delta` to arrive at virtual time `arrival_seconds`
  /// (clamped to now()) and apply it through the scheduler's *update
  /// priority lane*: with a fair-share scheduler attached, the apply
  /// dispatches immediately at arrival — ahead of any backlog of
  /// queued read rounds — so write visibility never waits behind
  /// reads. Without a scheduler this is ApplyDelta on a timer.
  /// Application failures land in status() (and `done`, when given).
  void SubmitDelta(frag::Delta delta, double arrival_seconds,
                   UpdateCompletionFn done = nullptr);

  /// Re-weight / re-cap this service's tenant on the attached
  /// fair-share scheduler. Fails without one, or on invalid config
  /// (zero/negative weight).
  Status ConfigureTenant(const TenantConfig& config);

  size_t cache_size() const { return cache_.size(); }
  void InvalidateAll();
  /// Fragment `f`'s content changed out of band (MaterializedView
  /// InsNode/DelNode): re-solve each cached entry with f's fresh
  /// triplet, evicting only entries whose answer changed.
  void OnContentUpdate(frag::FragmentId f);
  /// Fragment `f` was re-cut by split/merge: answers are unaffected
  /// (Sec. 5), so entries are kept and their signatures refreshed.
  void OnFragmentationUpdate(frag::FragmentId f);
  /// Register this service's cache with `view`'s update operations and
  /// follow the view's source tree from now on. The view must maintain
  /// the same FragmentSet this service evaluates against.
  Status AttachView(core::MaterializedView* view);

  /// Subscribe the embedded session to a catalog document's placement
  /// feed (CatalogService wiring). A Move changes no answer, so cached
  /// entries keep serving; the next batch flush re-partitions the plan
  /// via Session::SyncPlacement.
  void FollowPlacement(std::shared_ptr<const frag::PlacementFeed> feed) {
    session_.FollowPlacement(std::move(feed));
  }
  /// Catch up on the followed feed now (flushes also do this).
  void SyncPlacement() { session_.SyncPlacement(); }

 private:
  /// One distinct query being (or about to be) evaluated in a round.
  struct Unique {
    core::PreparedQuery prepared;
    std::vector<uint64_t> waiters;  ///< submission ids to complete
    /// Triplets by fragment id, filled in by the sites.
    std::vector<bexpr::FragmentEquations> equations;
  };

  struct Round {
    std::vector<Unique> uniques;
    int pending_sites = 0;
    /// Trace of the round span (adopted from the first waiter's trace;
    /// inactive when untraced), its parent, and the flush time.
    obs::TraceContext trace;
    uint64_t parent_span = 0;
    double start = 0.0;
    /// Session::plan() snapshot taken at flush (site -> fragments plus
    /// the solver's children table), so in-flight rounds stay in
    /// bounds if an attached view re-cuts fragments mid-run.
    std::shared_ptr<const core::SitePlan> plan;
    /// update_epoch_ at flush; a mismatch at compose time means an
    /// update raced the round and its results must not enter the cache.
    uint64_t epoch = 0;
    /// Fused-evaluation layout over this round's uniques (lane k =
    /// uniques[k]; lanes point into the uniques' PreparedQuery-owned
    /// QLists). Empty when fusion is off.
    xpath::EvalBatch fused;
  };

  struct Submission {
    core::PreparedQuery prepared;  ///< until admitted; then moved or dropped
    xpath::QueryFingerprint fp;    ///< outlives `prepared` for Complete()
    /// Minted at Submit; the root "query" span. Inactive when the
    /// service is untraced.
    obs::TraceContext trace;
    double submitted_seconds = 0.0;
    CompletionFn done;
  };

  struct CacheEntry {
    core::PreparedQuery query;  ///< retained for invalidation checks
    bool answer = false;
    uint64_t last_used = 0;
    /// The triplet equation system the answer was solved from, by
    /// fragment id. Retained so an update can splice in one fresh
    /// triplet and re-solve instead of discarding the entry; a slot
    /// with .fragment == -1 for a live fragment means "unknown" and is
    /// recomputed on first use.
    std::vector<bexpr::FragmentEquations> equations;
  };

  sim::SiteId coordinator() const { return session_.coordinator(); }

  void Admit(uint64_t id);
  void ArmBatchTimer();
  void FlushBatch();
  /// Hand a flushed round to the fair-share scheduler (or straight to
  /// BeginRound without one). Deferred rounds dispatch when
  /// OnUnitFinished frees capacity, bounced through ScheduleAt into
  /// this service's coordinator context.
  void DispatchRound(std::shared_ptr<Round> round);
  void BeginRound(std::shared_ptr<Round> round);
  void Compose(std::shared_ptr<Round> round);
  void Complete(uint64_t id, bool answer, bool cache_hit, bool shared,
                bool subsumed = false);

  /// Try to answer submission `id` from a cached query whose QList
  /// extends this query's (prefix_index_ probe + exact prefix check):
  /// truncate the donor's retained system to this query's width,
  /// re-solve at its root — zero site visits — and cache the result
  /// as a first-class entry. Returns false when no cached donor
  /// qualifies.
  bool TryServeBySubsumption(uint64_t id);

  /// Sec. 5's maintenance test, per entry: recompute fragment `f`'s
  /// triplet under the entry's query; if it differs from the retained
  /// one, splice it in and re-solve over `children` (the current
  /// children table, computed once per update). Returns false
  /// ("evict") exactly when the answer changed (or the entry cannot
  /// be re-solved).
  bool RefreshEntry(CacheEntry* entry, frag::FragmentId f,
                    const std::vector<std::vector<int32_t>>& children,
                    const std::vector<frag::FragmentId>& live);
  /// RefreshEntry with the fragment's fresh triplet supplied by the
  /// caller — the fused maintenance path computes one batch of fresh
  /// triplets per walk and feeds them through here.
  bool RefreshEntryWith(CacheEntry* entry, frag::FragmentId f,
                        bexpr::FragmentEquations fresh,
                        const std::vector<std::vector<int32_t>>& children,
                        const std::vector<frag::FragmentId>& live);
  void InsertCacheEntry(Unique&& unique, bool answer);
  void EvictIfOverCapacity();
  /// Register / remove a cached query's QList-prefix digests in
  /// prefix_index_ (subsumption lookup). No-ops when subsumption is
  /// disabled.
  void IndexEntryPrefixes(const xpath::QueryFingerprint& fp,
                          const CacheEntry& entry);
  void DeindexEntryPrefixes(const xpath::QueryFingerprint& fp,
                            const CacheEntry& entry);

  /// One equation table (vector<FragmentEquations> sized to the
  /// fragment table) is needed per unique per round; at 10k+ fragments
  /// that is ~1MB of churn per round, so finished rounds return their
  /// tables here instead of freeing them.
  std::vector<bexpr::FragmentEquations> AcquireEquations();
  void ReleaseEquations(std::vector<bexpr::FragmentEquations>&& eqs);

  /// Resolve the registry (shared vs owned) and intern every metric id
  /// under the configured prefix. Constructor-only.
  void InitObs();
  /// Register this service as a tenant on the configured fair-share
  /// scheduler (no-op without one). Constructor-only; invalid tenant
  /// configs land in first_error_.
  void InitScheduler();
  /// Emit an instant event under the ambient trace context (no-op when
  /// untraced or the context is inactive).
  void TraceInstant(const char* name);
  /// One interval summary line into the sink, from coordinator-thread
  /// meters only (mid-run safe: reads this thread's shard).
  void EmitStatsLine(double now_seconds);
  std::string_view label() const {
    return options_.name.empty() ? std::string_view("svc")
                                 : std::string_view(options_.name);
  }

  const frag::FragmentSet* set_;
  ServiceOptions options_;

  /// Metrics/tracing state. Declared BEFORE session_ so the registry
  /// outlives the backend's worker threads at destruction (workers
  /// join in the backend's dtor, inside session_'s).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::StatsSink* sink_ = nullptr;
  // Interned ids (names carry options_.metrics_prefix).
  using MetricId = obs::MetricsRegistry::MetricId;
  MetricId m_submitted_ = 0, m_completed_ = 0, m_cache_hits_ = 0;
  MetricId m_shared_evals_ = 0, m_unique_evals_ = 0, m_rounds_ = 0;
  MetricId m_cache_invalidations_ = 0, m_cache_refreshes_ = 0, m_ops_ = 0;
  MetricId m_fused_walks_ = 0, m_cse_shared_ = 0, m_subsumption_hits_ = 0;
  MetricId m_query_bytes_ = 0, m_query_msgs_ = 0;
  MetricId m_triplet_bytes_ = 0, m_triplet_msgs_ = 0;
  MetricId m_latency_ = 0, m_admission_wait_ = 0, m_batch_width_ = 0;
  MetricId m_sched_deferred_ = 0, m_sched_dispatch_delay_ = 0;
  /// Latency samples since the last sink line (coordinator thread
  /// only), and the cursor of counter values the last line reported.
  obs::Histogram interval_latency_;
  struct SinkCursor {
    double t = 0.0;
    uint64_t completed = 0;
    uint64_t hits = 0;
    uint64_t query_bytes = 0;
    uint64_t triplet_bytes = 0;
  };
  SinkCursor sink_cursor_;

  /// Owns the cluster, the service-lifetime hash-consing ExprFactory
  /// (formulas and triplets interned once, reused across every batch
  /// and query), and the per-site partition plan. Also tracks the
  /// current source tree (rebound when a view re-cuts fragments).
  core::Session session_;

  /// Fair-share admission (null = FIFO). Borrowed from options; the
  /// tenant id is this service's registration on it.
  FairScheduler* scheduler_ = nullptr;
  FairScheduler::TenantId tenant_id_ = -1;

  uint64_t next_query_id_ = 0;
  std::unordered_map<uint64_t, Submission> submissions_;

  std::vector<Unique> pending_;  ///< next round, being assembled
  std::unordered_map<xpath::QueryFingerprint, size_t,
                     xpath::QueryFingerprintHash>
      pending_index_;
  bool batch_timer_armed_ = false;
  uint64_t batch_epoch_ = 0;  ///< bumped per flush; stales old timers

  /// fp -> round holding it, for joining in-flight evaluations.
  std::unordered_map<xpath::QueryFingerprint, std::shared_ptr<Round>,
                     xpath::QueryFingerprintHash>
      in_flight_;

  std::unordered_map<xpath::QueryFingerprint, CacheEntry,
                     xpath::QueryFingerprintHash>
      cache_;
  uint64_t cache_tick_ = 0;

  /// Subsumption lookup: digest of a cached query's QList prefix (any
  /// length, xpath::PrefixDigest) -> cache keys of the entries
  /// extending that prefix. Maintained by Insert/Evict/InvalidateAll
  /// only while enable_cache && enable_subsumption.
  std::unordered_map<xpath::QueryFingerprint,
                     std::vector<xpath::QueryFingerprint>,
                     xpath::QueryFingerprintHash>
      prefix_index_;

  /// Recycled equation tables (see AcquireEquations).
  std::vector<std::vector<bexpr::FragmentEquations>> equations_pool_;

  std::vector<QueryOutcome> outcomes_;
  uint64_t update_epoch_ = 0;  ///< bumped per document update
  Status first_error_ = Status::OK();
};

}  // namespace parbox::service

#endif  // PARBOX_SERVICE_QUERY_SERVICE_H_
