// parboxq — command-line distributed Boolean XPath evaluation.
//
//   parboxq --query='[//stock[code = "GOOG"]]' portfolio.xml
//   parboxq --query='[//a]' --split-label=site --algo=all doc.xml
//   cat doc.xml | parboxq --query='[//a]' --splits=8 --sites=4 -
//
// Loads an XML document, fragments it (either at every element with a
// given label, or with N random splits), distributes the fragments
// over simulated sites, opens a core::Session, prepares the query
// once, and executes it with the chosen evaluator(s), printing answers
// and cost profiles. Evaluator names come straight from the
// EvaluatorRegistry — a newly registered algorithm shows up here with
// no tool changes.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/path_selection.h"
#include "core/selection.h"
#include "core/session.h"
#include "exec/backend.h"
#include "fragment/strategies.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/normalize.h"

namespace {

using namespace parbox;

struct CliOptions {
  std::string query;
  std::string input_path;
  std::string split_label;
  int random_splits = 0;
  int sites = 0;  // 0 = one site per fragment
  std::string algorithm = "parbox";
  std::string backend = exec::DefaultBackendSpec();
  uint64_t seed = 42;
  bool select = false;
  bool select_path = false;
  bool show_fragments = false;
  bool serve = false;
  int serve_queries = 64;
  int serve_clients = 8;
  double serve_think_ms = 0.0;
};

int Usage(const char* argv0) {
  const std::string algos =
      core::EvaluatorRegistry::Instance().NamesJoined('|');
  const std::string backends =
      exec::ExecBackendRegistry::Instance().NamesJoined('|');
  std::fprintf(
      stderr,
      "usage: %s --query=QUERY [options] FILE|-\n"
      "\n"
      "options:\n"
      "  --query=Q           Boolean XPath (XBL) query, e.g. '[//a[b]]'\n"
      "  --split-label=L     fragment at every element labelled L\n"
      "  --splits=N          N random splits (default: 0, one fragment)\n"
      "  --sites=N           round-robin fragments over N sites\n"
      "                      (default: one site per fragment)\n"
      "  --algo=A            registered evaluator, or all\n"
      "                      (registered: %s; default: parbox;\n"
      "                      --algorithm= is accepted as an alias)\n"
      "  --backend=B         execution substrate, e.g. sim or\n"
      "                      threads:8 (registered: %s; default: sim;\n"
      "                      --serve honors it too)\n"
      "  --select            treat the query as a node predicate and\n"
      "                      list matching elements\n"
      "  --select-path       treat the query as a path and list the\n"
      "                      nodes it selects (Sec. 8 extension)\n"
      "  --show-fragments    dump each fragment before evaluating\n"
      "  --seed=N            RNG seed for --splits (default: 42)\n"
      "  --serve             run a QueryService: serve the query as a\n"
      "                      closed-loop stream (batched, cached) and\n"
      "                      print service-level metrics\n"
      "  --serve-queries=N   total queries to serve (default: 64)\n"
      "  --serve-clients=N   concurrent clients (default: 8)\n"
      "  --serve-think-ms=T  per-client think time (default: 0)\n",
      argv0, algos.c_str(), backends.c_str());
  std::fprintf(stderr, "\nregistered evaluators:\n");
  for (const std::string& name :
       core::EvaluatorRegistry::Instance().Names()) {
    auto evaluator = core::EvaluatorRegistry::Instance().Create(name);
    std::fprintf(stderr, "  %-12s %s\n", name.c_str(),
                 std::string(evaluator->description()).c_str());
  }
  return 2;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "parboxq: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--query", &value)) {
      options.query = value;
    } else if (ParseFlag(argv[i], "--split-label", &value)) {
      options.split_label = value;
    } else if (ParseFlag(argv[i], "--splits", &value)) {
      options.random_splits = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--sites", &value)) {
      options.sites = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--algo", &value) ||
               ParseFlag(argv[i], "--algorithm", &value)) {
      options.algorithm = value;
    } else if (ParseFlag(argv[i], "--backend", &value)) {
      options.backend = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--serve-queries", &value)) {
      options.serve_queries = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--serve-clients", &value)) {
      options.serve_clients = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--serve-think-ms", &value)) {
      options.serve_think_ms = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      options.serve = true;
    } else if (std::strcmp(argv[i], "--select") == 0) {
      options.select = true;
    } else if (std::strcmp(argv[i], "--select-path") == 0) {
      options.select_path = true;
    } else if (std::strcmp(argv[i], "--show-fragments") == 0) {
      options.show_fragments = true;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage(argv[0]);
    } else {
      options.input_path = argv[i];
    }
  }
  if (options.query.empty() || options.input_path.empty()) {
    return Usage(argv[0]);
  }

  // ---- Load ----
  std::string xml_text;
  if (options.input_path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    xml_text = buffer.str();
  } else {
    std::ifstream file(options.input_path);
    if (!file) {
      std::fprintf(stderr, "parboxq: cannot open %s\n",
                   options.input_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    xml_text = buffer.str();
  }
  auto doc = xml::ParseXml(xml_text);
  if (!doc.ok()) return Fail(doc.status());

  // ---- Fragment ----
  auto set = frag::FragmentSet::FromDocument(std::move(*doc));
  if (!set.ok()) return Fail(set.status());
  if (!options.split_label.empty()) {
    auto created = frag::SplitAtAllLabeled(&*set, options.split_label);
    if (!created.ok()) return Fail(created.status());
  }
  if (options.random_splits > 0) {
    Rng rng(options.seed);
    auto created = frag::RandomSplits(&*set, options.random_splits, &rng);
    if (!created.ok()) return Fail(created.status());
  }
  if (options.show_fragments) {
    for (auto f : set->live_ids()) {
      std::printf("--- fragment F%d (%zu elements) ---\n%s\n", f,
                  set->FragmentElements(f),
                  xml::WriteXml(set->fragment(f).root, {.indent = true})
                      .c_str());
    }
  }

  // ---- Distribute ----
  auto st = frag::SourceTree::Create(
      *set, options.sites > 0
                ? frag::AssignRoundRobin(*set, options.sites)
                : frag::AssignOneSitePerFragment(*set));
  if (!st.ok()) return Fail(st.status());
  std::printf("%zu elements, %zu fragments, %d sites\n",
              set->TotalElements(), set->live_count(), st->num_sites());

  // ---- Open a session, prepare the query once ----
  // An unknown --backend fails here, listing the registered backends —
  // the same UX as an unknown --algo.
  auto session = core::Session::Create(
      &*set, &*st, core::SessionOptions{.backend = options.backend});
  if (!session.ok()) return Fail(session.status());
  auto prepared = session->Prepare(options.query);
  if (!prepared.ok()) return Fail(prepared.status());
  std::printf("query: %s  (|QList| = %zu)\n", options.query.c_str(),
              prepared->query().size());

  // ---- Serve ----
  if (options.serve) {
    service::ServiceOptions svc_options;
    svc_options.backend = options.backend;
    service::QueryService svc(&*set, &*st, svc_options);
    auto report = service::RunClosedLoopWith(
        &svc, [&](size_t) { return xpath::CompileQuery(options.query); },
        static_cast<size_t>(std::max(options.serve_queries, 0)),
        options.serve_clients, options.serve_think_ms / 1e3);
    if (!report.ok()) return Fail(report.status());
    if (svc.outcomes().empty()) {
      return Fail(Status::InvalidArgument("nothing served"));
    }
    std::printf("answer: %s\n",
                svc.outcomes().front().answer ? "true" : "false");
    std::printf("%s\n", report->ToString().c_str());
    return 0;
  }

  // ---- Evaluate ----
  if (options.select_path) {
    auto selection = xpath::CompileSelection(options.query);
    if (!selection.ok()) return Fail(selection.status());
    auto result = core::RunPathSelection(*set, *st, *selection);
    if (!result.ok()) return Fail(result.status());
    std::printf("%zu nodes selected\n", result->total_selected);
    int shown = 0;
    for (const xml::Node* n : result->AllSelected()) {
      if (++shown > 20) {
        std::printf("  ... (%zu more)\n", result->total_selected - 20);
        break;
      }
      std::printf("  <%s>%s\n", std::string(n->label()).c_str(),
                  xml::DirectText(*n).substr(0, 40).c_str());
    }
    std::printf("%s\n", result->report.ToString().c_str());
    return 0;
  }
  if (options.select) {
    auto result = core::RunSelectionParBoX(*set, *st, prepared->query());
    if (!result.ok()) return Fail(result.status());
    std::printf("%zu elements match\n", result->total_selected);
    int shown = 0;
    for (const xml::Node* n : result->AllSelected()) {
      if (++shown > 20) {
        std::printf("  ... (%zu more)\n", result->total_selected - 20);
        break;
      }
      std::printf("  <%s>%s\n", std::string(n->label()).c_str(),
                  xml::DirectText(*n).substr(0, 40).c_str());
    }
    std::printf("%s\n", result->report.ToString().c_str());
    return 0;
  }

  if (options.algorithm == "all") {
    bool first = true;
    for (const std::string& name :
         core::EvaluatorRegistry::Instance().Names()) {
      auto report = session->Execute(*prepared, {.evaluator = name});
      if (!report.ok()) return Fail(report.status());
      if (first) {
        std::printf("answer: %s\n", report->answer ? "true" : "false");
        first = false;
      }
      std::printf("  %s\n", report->ToString().c_str());
    }
    return 0;
  }
  // Unknown names fail with the registered list in the message.
  auto report = session->Execute(*prepared, {.evaluator = options.algorithm});
  if (!report.ok()) return Fail(report.status());
  std::printf("answer: %s\n%s\n", report->answer ? "true" : "false",
              report->Detailed().c_str());
  return 0;
}
