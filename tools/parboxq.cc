// parboxq — command-line distributed Boolean XPath evaluation.
//
//   parboxq --query='[//stock[code = "GOOG"]]' portfolio.xml
//   parboxq --query='[//a]' --split-label=site --algo=all doc.xml
//   cat doc.xml | parboxq --query='[//a]' --splits=8 --sites=4 -
//   parboxq --query='[//a]' --serve --splits=8 a.xml b.xml c.xml
//   parboxq --list
//
// Loads an XML document, fragments it (either at every element with a
// given label, or with N random splits), distributes the fragments
// over simulated sites, opens a core::Session, prepares the query
// once, and executes it with the chosen evaluator(s), printing answers
// and cost profiles. Evaluator names come straight from the
// EvaluatorRegistry — a newly registered algorithm shows up here with
// no tool changes.
//
// With --serve and SEVERAL input files, the tool opens a catalog: one
// shared execution substrate (--backend), one document per file, all
// served concurrently by a service::CatalogService, with per-document
// and aggregate metrics printed.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "core/evaluator.h"
#include "core/path_selection.h"
#include "core/selection.h"
#include "core/session.h"
#include "exec/backend.h"
#include "fragment/placement.h"
#include "fragment/strategies.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "service/catalog_service.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/normalize.h"

namespace {

using namespace parbox;

struct CliOptions {
  std::string query;
  std::vector<std::string> input_paths;
  std::string split_label;
  bool list = false;
  int random_splits = 0;
  int sites = 0;  // 0 = one site per fragment
  std::string algorithm = "parbox";
  std::string backend = exec::DefaultBackendSpec();
  uint64_t seed = 42;
  bool select = false;
  bool select_path = false;
  bool show_fragments = false;
  bool serve = false;
  int serve_queries = 64;
  int serve_clients = 8;
  double serve_think_ms = 0.0;
  std::string trace_path;  ///< --trace=FILE: Chrome trace JSON out
  bool statz = false;      ///< dump the metrics registry after the run
  double stats_interval = 1.0;  ///< --serve periodic line cadence
  /// --fair-share: catalog-wide DWRR admission across documents.
  bool fair_share = false;
  /// --fair-slots=N: global concurrent-round cap under fair share.
  size_t fair_slots = 4;
  /// --tenant=NAME:weight=W[,cap=C], repeatable (implies --fair-share).
  std::vector<std::pair<std::string, service::TenantConfig>> tenants;
};

/// Parse one --tenant=NAME:weight=W[,cap=C] spec. NAME is an input
/// path or the positional alias d<index> (d0 = first FILE).
Result<std::pair<std::string, service::TenantConfig>> ParseTenantSpec(
    const std::string& spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    return Status::InvalidArgument(
        "--tenant wants NAME:weight=W[,cap=C], got \"" + spec + "\"");
  }
  std::pair<std::string, service::TenantConfig> out;
  out.first = spec.substr(0, colon);
  std::stringstream rest(spec.substr(colon + 1));
  std::string kv;
  while (std::getline(rest, kv, ',')) {
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          "--tenant option \"" + kv + "\" wants key=value");
    }
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    if (key == "weight") {
      out.second.weight = std::atof(val.c_str());
    } else if (key == "cap") {
      out.second.max_in_flight =
          static_cast<size_t>(std::strtoull(val.c_str(), nullptr, 10));
    } else {
      return Status::InvalidArgument(
          "unknown --tenant key \"" + key + "\" (weight, cap)");
    }
  }
  PARBOX_RETURN_IF_ERROR(service::ValidateTenantConfig(out.second));
  return out;
}

int Usage(const char* argv0) {
  const std::string algos =
      core::EvaluatorRegistry::Instance().NamesJoined('|');
  const std::string backends =
      exec::ExecBackendRegistry::Instance().NamesJoined('|');
  std::fprintf(
      stderr,
      "usage: %s --query=QUERY [options] FILE...|-\n"
      "       %s --list\n"
      "\n"
      "options:\n"
      "  --list              print registered evaluators and backends\n"
      "                      to stdout and exit 0 (script-friendly)\n"
      "  --query=Q           Boolean XPath (XBL) query, e.g. '[//a[b]]'\n"
      "  --split-label=L     fragment at every element labelled L\n"
      "  --splits=N          N random splits (default: 0, one fragment)\n"
      "  --sites=N           round-robin fragments over N sites\n"
      "                      (default: one site per fragment)\n"
      "  --algo=A            registered evaluator, or all\n"
      "                      (registered: %s; default: parbox;\n"
      "                      --algorithm= is accepted as an alias)\n"
      "  --backend=B         execution substrate, e.g. sim, threads:8,\n"
      "                      or proc:4 — site daemons over sockets\n"
      "                      (registered: %s; default: sim;\n"
      "                      --serve honors it too)\n"
      "  --select            treat the query as a node predicate and\n"
      "                      list matching elements\n"
      "  --select-path       treat the query as a path and list the\n"
      "                      nodes it selects (Sec. 8 extension)\n"
      "  --show-fragments    dump each fragment before evaluating\n"
      "  --seed=N            RNG seed for --splits (default: 42)\n"
      "  --serve             run a QueryService: serve the query as a\n"
      "                      closed-loop stream (batched, cached) and\n"
      "                      print service-level metrics; with several\n"
      "                      FILEs, serve them all as one catalog on a\n"
      "                      shared backend (per-doc + aggregate stats)\n"
      "  --serve-queries=N   total queries to serve, per document\n"
      "                      (default: 64)\n"
      "  --serve-clients=N   concurrent clients (default: 8)\n"
      "  --serve-think-ms=T  per-client think time (default: 0)\n"
      "  --trace=FILE        trace every query; write Chrome\n"
      "                      trace_event JSON to FILE (load it in\n"
      "                      chrome://tracing or ui.perfetto.dev) and\n"
      "                      print the first query's span breakdown\n"
      "  --statz             dump the metrics registry (counters,\n"
      "                      gauges, histograms) after the run\n"
      "  --stats-interval=S  cadence of --serve's periodic one-line\n"
      "                      stats summaries (default: 1s of the\n"
      "                      backend clock)\n"
      "  --fair-share        catalog mode: admit rounds through the\n"
      "                      weighted fair-share scheduler (DWRR\n"
      "                      across documents) instead of FIFO\n"
      "  --fair-slots=N      global concurrent-round cap under\n"
      "                      --fair-share (default: 4)\n"
      "  --tenant=SPEC       per-document weight/cap, repeatable;\n"
      "                      SPEC = NAME:weight=W[,cap=C] where NAME\n"
      "                      is a FILE path or d<index> (d0 = first\n"
      "                      FILE). Implies --fair-share.\n",
      argv0, argv0, algos.c_str(), backends.c_str());
  std::fprintf(stderr, "\nregistered evaluators:\n");
  for (const std::string& name :
       core::EvaluatorRegistry::Instance().Names()) {
    auto evaluator = core::EvaluatorRegistry::Instance().Create(name);
    std::fprintf(stderr, "  %-12s %s\n", name.c_str(),
                 std::string(evaluator->description()).c_str());
  }
  return 2;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "parboxq: %s\n", status.ToString().c_str());
  return 1;
}

/// --list: the registries, on STDOUT, exit 0 — so scripts stop
/// scraping the usage error text for the names.
int ListRegistries() {
  std::printf("evaluators:\n");
  for (const std::string& name :
       core::EvaluatorRegistry::Instance().Names()) {
    auto evaluator = core::EvaluatorRegistry::Instance().Create(name);
    std::printf("  %-12s %s\n", name.c_str(),
                std::string(evaluator->description()).c_str());
  }
  std::printf("backends:\n");
  for (const std::string& name :
       exec::ExecBackendRegistry::Instance().Names()) {
    std::printf(
        "  %s\n",
        exec::ExecBackendRegistry::Instance().Grammar(name).c_str());
  }
  return 0;
}

/// Write the collected trace and show the first query's breakdown.
int DumpTrace(const obs::Tracer& tracer, const std::string& path) {
  Status written = tracer.WriteChromeJson(path);
  if (!written.ok()) return Fail(written);
  std::printf("\ntrace: %zu events -> %s", tracer.event_count(),
              path.c_str());
  if (tracer.dropped() > 0) {
    std::printf("  (%llu dropped at the event cap)",
                static_cast<unsigned long long>(tracer.dropped()));
  }
  std::printf("\n");
  const std::string breakdown = tracer.Breakdown(1);
  if (!breakdown.empty()) {
    std::printf("first query breakdown:\n%s", breakdown.c_str());
  }
  return 0;
}

/// Build the stdout-printing sink used by --serve.
obs::StatsSink MakeServeSink(double interval_seconds) {
  obs::StatsSinkOptions sink_options;
  sink_options.interval_seconds = interval_seconds;
  sink_options.write = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
  };
  return obs::StatsSink(sink_options);
}

/// A loaded input: the fragmented document plus its (mutable) h.
struct LoadedDoc {
  frag::FragmentSet set;
  frag::Placement placement;
};

Result<std::string> ReadInput(const std::string& path) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Parse + fragment + place one input per the CLI flags.
Result<LoadedDoc> LoadDoc(const CliOptions& options,
                          const std::string& path) {
  PARBOX_ASSIGN_OR_RETURN(std::string xml_text, ReadInput(path));
  PARBOX_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseXml(xml_text));
  PARBOX_ASSIGN_OR_RETURN(frag::FragmentSet set,
                          frag::FragmentSet::FromDocument(std::move(doc)));
  if (!options.split_label.empty()) {
    PARBOX_RETURN_IF_ERROR(
        frag::SplitAtAllLabeled(&set, options.split_label).status());
  }
  if (options.random_splits > 0) {
    Rng rng(options.seed);
    PARBOX_RETURN_IF_ERROR(
        frag::RandomSplits(&set, options.random_splits, &rng).status());
  }
  PARBOX_ASSIGN_OR_RETURN(
      frag::Placement placement,
      frag::Placement::Create(
          set, options.sites > 0
                   ? frag::AssignRoundRobin(set, options.sites)
                   : frag::AssignOneSitePerFragment(set)));
  return LoadedDoc{std::move(set), std::move(placement)};
}

/// --serve with several FILEs: one catalog, one shared backend, every
/// file a named document served closed-loop (--serve-queries per
/// document, --serve-clients concurrent streams, --serve-think-ms
/// between a completion and the client's next ask), per-document +
/// aggregate reports.
int ServeCatalog(const CliOptions& options) {
  catalog::CatalogOptions cat_options;
  cat_options.backend = options.backend;
  auto cat = catalog::Catalog::Create(cat_options);
  if (!cat.ok()) return Fail(cat.status());
  for (const std::string& path : options.input_paths) {
    auto loaded = LoadDoc(options, path);
    if (!loaded.ok()) return Fail(loaded.status());
    std::printf("%s: %zu elements, %zu fragments, %d sites\n",
                path.c_str(), loaded->set.TotalElements(),
                loaded->set.live_count(), loaded->placement.num_sites());
    auto opened = (*cat)->Open(path, std::move(loaded->set),
                               std::move(loaded->placement));
    if (!opened.ok()) return Fail(opened.status());
  }
  obs::Tracer tracer;
  obs::StatsSink sink = MakeServeSink(options.stats_interval);
  service::ServiceOptions svc_options;
  if (!options.trace_path.empty()) svc_options.tracer = &tracer;
  svc_options.sink = &sink;
  if (options.fair_share) {
    svc_options.enable_fair_share = true;
    svc_options.fair_share.max_in_flight = options.fair_slots;
  }
  auto svc = service::CatalogService::Create(cat->get(), svc_options);
  if (!svc.ok()) return Fail(svc.status());
  service::CatalogService* service = svc->get();
  for (const auto& [name, config] : options.tenants) {
    // --tenant NAME: an input path verbatim, or the d<index> alias.
    std::string doc = name;
    if (std::find(options.input_paths.begin(), options.input_paths.end(),
                  doc) == options.input_paths.end()) {
      char* end = nullptr;
      const long idx =
          name.size() > 1 && name[0] == 'd'
              ? std::strtol(name.c_str() + 1, &end, 10)
              : -1;
      if (end == nullptr || *end != '\0' || idx < 0 ||
          static_cast<size_t>(idx) >= options.input_paths.size()) {
        return Fail(Status::InvalidArgument(
            "--tenant names unknown document \"" + name +
            "\" (give a FILE path or d<index>)"));
      }
      doc = options.input_paths[static_cast<size_t>(idx)];
    }
    Status configured = service->ConfigureTenant(doc, config);
    if (!configured.ok()) return Fail(configured);
  }

  // Closed loop per document: `serve_clients` concurrent streams, a
  // client re-asking (after think time) only when its previous query
  // completes — the same drive as the single-document --serve path.
  const size_t per_doc =
      static_cast<size_t>(std::max(options.serve_queries, 0));
  const double think = options.serve_think_ms / 1e3;
  auto remaining = std::make_shared<std::vector<size_t>>(
      options.input_paths.size(), per_doc);
  auto failed = std::make_shared<Status>(Status::OK());
  auto ask = std::make_shared<std::function<void(size_t, double)>>();
  *ask = [&options, service, remaining, failed, ask, think](
             size_t di, double delay) {
    if ((*remaining)[di] == 0 || !failed->ok()) return;
    --(*remaining)[di];
    auto q = xpath::CompileQuery(options.query);
    if (!q.ok()) {
      *failed = q.status();
      return;
    }
    const std::string& doc = options.input_paths[di];
    const double arrival =
        service->document_service(doc)->now() + delay;
    auto id = service->Submit(
        doc, std::move(*q), arrival,
        // A completion is this client asking again, after thinking.
        [ask, di, think](const service::QueryOutcome&) {
          (*ask)(di, think);
        });
    if (!id.ok()) *failed = id.status();
  };
  const int clients = std::max(options.serve_clients, 1);
  for (size_t di = 0; di < options.input_paths.size(); ++di) {
    for (int c = 0; c < clients; ++c) (*ask)(di, /*delay=*/0.0);
  }
  (*svc)->Run();
  *ask = {};  // break the callback's self-reference cycle
  if (!failed->ok()) return Fail(*failed);
  if (!(*svc)->status().ok()) return Fail((*svc)->status());
  obs::MetricsSnapshot statz;
  for (const std::string& path : options.input_paths) {
    service::QueryService* qs = service->document_service(path);
    qs->FlushStats();
    // Each call injects that document's substrate gauges into the
    // shared registry; the last snapshot carries them all.
    statz = qs->SnapshotMetrics();
    auto report = (*svc)->BuildReport(path);
    if (!report.ok()) return Fail(report.status());
    std::printf("\n--- %s (answer: %s) ---\n%s\n", path.c_str(),
                !qs->outcomes().empty() && qs->outcomes().front().answer
                    ? "true"
                    : "false",
                report->ToString().c_str());
  }
  std::printf("\n=== catalog aggregate (%zu documents, backend %s) ===\n%s\n",
              options.input_paths.size(), options.backend.c_str(),
              (*svc)->BuildAggregateReport().ToString().c_str());
  if (options.statz) std::printf("\n%s", statz.ToString().c_str());
  if (!options.trace_path.empty()) {
    return DumpTrace(tracer, options.trace_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--query", &value)) {
      options.query = value;
    } else if (ParseFlag(argv[i], "--split-label", &value)) {
      options.split_label = value;
    } else if (ParseFlag(argv[i], "--splits", &value)) {
      options.random_splits = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--sites", &value)) {
      options.sites = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--algo", &value) ||
               ParseFlag(argv[i], "--algorithm", &value)) {
      options.algorithm = value;
    } else if (ParseFlag(argv[i], "--backend", &value)) {
      options.backend = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--serve-queries", &value)) {
      options.serve_queries = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--serve-clients", &value)) {
      options.serve_clients = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--serve-think-ms", &value)) {
      options.serve_think_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--trace", &value)) {
      options.trace_path = value;
    } else if (ParseFlag(argv[i], "--stats-interval", &value)) {
      options.stats_interval = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--fair-slots", &value)) {
      options.fair_slots =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      options.fair_share = true;
    } else if (ParseFlag(argv[i], "--tenant", &value)) {
      auto spec = ParseTenantSpec(value);
      if (!spec.ok()) return Fail(spec.status());
      options.tenants.push_back(std::move(*spec));
      options.fair_share = true;
    } else if (std::strcmp(argv[i], "--fair-share") == 0) {
      options.fair_share = true;
    } else if (std::strcmp(argv[i], "--statz") == 0) {
      options.statz = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      options.serve = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      options.list = true;
    } else if (std::strcmp(argv[i], "--select") == 0) {
      options.select = true;
    } else if (std::strcmp(argv[i], "--select-path") == 0) {
      options.select_path = true;
    } else if (std::strcmp(argv[i], "--show-fragments") == 0) {
      options.show_fragments = true;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage(argv[0]);
    } else {
      options.input_paths.emplace_back(argv[i]);
    }
  }
  if (options.list) return ListRegistries();
  if (options.query.empty() || options.input_paths.empty()) {
    return Usage(argv[0]);
  }
  if (options.input_paths.size() > 1) {
    if (!options.serve) {
      return Fail(Status::InvalidArgument(
          "several input files need --serve (catalog mode)"));
    }
    return ServeCatalog(options);
  }
  if (options.fair_share) {
    // Fair-share admission lives in the catalog layer; a one-document
    // catalog keeps --tenant/--fair-slots meaningful instead of
    // silently ignored.
    if (!options.serve) {
      return Fail(Status::InvalidArgument(
          "--fair-share/--tenant need --serve"));
    }
    return ServeCatalog(options);
  }

  // ---- Load + fragment + place (single document) ----
  auto loaded = LoadDoc(options, options.input_paths.front());
  if (!loaded.ok()) return Fail(loaded.status());
  frag::FragmentSet set_storage = std::move(loaded->set);
  frag::FragmentSet* set = &set_storage;
  if (options.show_fragments) {
    for (auto f : set->live_ids()) {
      std::printf("--- fragment F%d (%zu elements) ---\n%s\n", f,
                  set->FragmentElements(f),
                  xml::WriteXml(set->fragment(f).root, {.indent = true})
                      .c_str());
    }
  }

  // ---- Distribute: freeze h into the epoch-stamped snapshot ----
  auto st = loaded->placement.Snapshot(*set);
  if (!st.ok()) return Fail(st.status());
  std::printf("%zu elements, %zu fragments, %d sites\n",
              set->TotalElements(), set->live_count(), st->num_sites());

  // ---- Open a session, prepare the query once ----
  // An unknown --backend fails here, listing the registered backends —
  // the same UX as an unknown --algo.
  obs::Tracer tracer;
  core::SessionOptions session_options{.backend = options.backend};
  if (!options.trace_path.empty()) session_options.tracer = &tracer;
  auto session = core::Session::Create(&*set, &*st, session_options);
  if (!session.ok()) return Fail(session.status());
  auto prepared = session->Prepare(options.query);
  if (!prepared.ok()) return Fail(prepared.status());
  std::printf("query: %s  (|QList| = %zu)\n", options.query.c_str(),
              prepared->query().size());

  // ---- Serve ----
  if (options.serve) {
    obs::StatsSink sink = MakeServeSink(options.stats_interval);
    service::ServiceOptions svc_options;
    svc_options.backend = options.backend;
    if (!options.trace_path.empty()) svc_options.tracer = &tracer;
    svc_options.sink = &sink;
    service::QueryService svc(&*set, &*st, svc_options);
    auto report = service::RunClosedLoopWith(
        &svc, [&](size_t) { return xpath::CompileQuery(options.query); },
        static_cast<size_t>(std::max(options.serve_queries, 0)),
        options.serve_clients, options.serve_think_ms / 1e3);
    if (!report.ok()) return Fail(report.status());
    if (svc.outcomes().empty()) {
      return Fail(Status::InvalidArgument("nothing served"));
    }
    svc.FlushStats();
    std::printf("answer: %s\n",
                svc.outcomes().front().answer ? "true" : "false");
    std::printf("%s\n", report->ToString().c_str());
    if (options.statz) {
      std::printf("\n%s", svc.SnapshotMetrics().ToString().c_str());
    }
    if (!options.trace_path.empty()) {
      return DumpTrace(tracer, options.trace_path);
    }
    return 0;
  }

  // ---- Evaluate ----
  if (options.select_path) {
    auto selection = xpath::CompileSelection(options.query);
    if (!selection.ok()) return Fail(selection.status());
    auto result = core::RunPathSelection(*set, *st, *selection);
    if (!result.ok()) return Fail(result.status());
    std::printf("%zu nodes selected\n", result->total_selected);
    int shown = 0;
    for (const xml::Node* n : result->AllSelected()) {
      if (++shown > 20) {
        std::printf("  ... (%zu more)\n", result->total_selected - 20);
        break;
      }
      std::printf("  <%s>%s\n", std::string(n->label()).c_str(),
                  xml::DirectText(*n).substr(0, 40).c_str());
    }
    std::printf("%s\n", result->report.ToString().c_str());
    return 0;
  }
  if (options.select) {
    auto result = core::RunSelectionParBoX(*set, *st, prepared->query());
    if (!result.ok()) return Fail(result.status());
    std::printf("%zu elements match\n", result->total_selected);
    int shown = 0;
    for (const xml::Node* n : result->AllSelected()) {
      if (++shown > 20) {
        std::printf("  ... (%zu more)\n", result->total_selected - 20);
        break;
      }
      std::printf("  <%s>%s\n", std::string(n->label()).c_str(),
                  xml::DirectText(*n).substr(0, 40).c_str());
    }
    std::printf("%s\n", result->report.ToString().c_str());
    return 0;
  }

  if (options.algorithm == "all") {
    bool first = true;
    for (const std::string& name :
         core::EvaluatorRegistry::Instance().Names()) {
      auto report = session->Execute(*prepared, {.evaluator = name});
      if (!report.ok()) return Fail(report.status());
      if (first) {
        std::printf("answer: %s\n", report->answer ? "true" : "false");
        first = false;
      }
      std::printf("  %s\n", report->ToString().c_str());
    }
    if (!options.trace_path.empty()) {
      return DumpTrace(tracer, options.trace_path);
    }
    return 0;
  }
  // Unknown names fail with the registered list in the message.
  auto report = session->Execute(*prepared, {.evaluator = options.algorithm});
  if (!report.ok()) return Fail(report.status());
  std::printf("answer: %s\n%s\n", report->answer ? "true" : "false",
              report->Detailed().c_str());
  if (!options.trace_path.empty()) {
    return DumpTrace(tracer, options.trace_path);
  }
  return 0;
}
