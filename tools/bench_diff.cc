// bench_diff: compare two bench JSON trajectories and flag regressions.
//
// The figure benches emit flat {"bench": name, "key": number, ...}
// JSON through bench::JsonReport (one file per bench under
// $PARBOX_BENCH_JSON_DIR); bench/trajectory/ holds committed baseline
// snapshots of those files. This tool diffs a baseline against a fresh
// run:
//
//   bench_diff bench/trajectory out/               # dir vs dir
//   bench_diff old_x6.json new_x6.json             # file vs file
//   bench_diff --threshold=0.10 bench/trajectory out/
//
// Directories are matched per bench: by each file's "bench" field when
// present, else by filename stem — so the committed BENCH_x6_*.json
// baseline pairs with a fresh bench_x6_*.json. For every shared metric
// it prints old/new/delta% and a verdict; the regression direction is
// inferred from the key (qps and speedup want higher; seconds, ms,
// bytes, and overhead want lower; anything else — corpus sizes, thread
// counts — is informational only). Exits 1 iff any directed metric
// regressed by more than the threshold (default 5%).

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct BenchFile {
  std::string bench;  // the "bench" field; filename stem when absent
  std::map<std::string, double> metrics;
};

/// Minimal scanner for the flat JSON the benches emit: every
/// "key": value pair at any depth, numeric values kept as metrics and
/// the "bench" string kept as the identity. Not a general JSON parser
/// on purpose — the input format is ours.
bool ParseBenchJson(const fs::path& path, BenchFile* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n",
                 path.string().c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  out->bench = path.stem().string();
  size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    size_t cursor = key_end + 1;
    while (cursor < text.size() && std::isspace(
               static_cast<unsigned char>(text[cursor]))) {
      ++cursor;
    }
    if (cursor >= text.size() || text[cursor] != ':') {
      pos = key_end + 1;  // a string value, not a key
      continue;
    }
    ++cursor;
    while (cursor < text.size() && std::isspace(
               static_cast<unsigned char>(text[cursor]))) {
      ++cursor;
    }
    if (cursor < text.size() && text[cursor] == '"') {
      const size_t value_end = text.find('"', cursor + 1);
      if (value_end == std::string::npos) break;
      if (key == "bench") {
        out->bench = text.substr(cursor + 1, value_end - cursor - 1);
      }
      pos = value_end + 1;
      continue;
    }
    char* end = nullptr;
    const double value = std::strtod(text.c_str() + cursor, &end);
    if (end != text.c_str() + cursor) {
      out->metrics[key] = value;
      pos = static_cast<size_t>(end - text.c_str());
    } else {
      pos = cursor;
    }
  }
  return true;
}

/// Load one file, or every *.json in a directory, keyed by bench name.
bool LoadPath(const fs::path& path, std::map<std::string, BenchFile>* out) {
  std::vector<fs::path> files;
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::directory_iterator(path)) {
      if (entry.path().extension() == ".json") files.push_back(entry.path());
    }
    if (files.empty()) {
      std::fprintf(stderr, "bench_diff: no *.json in %s\n",
                   path.string().c_str());
      return false;
    }
  } else {
    files.push_back(path);
  }
  for (const fs::path& file : files) {
    BenchFile parsed;
    if (!ParseBenchJson(file, &parsed)) return false;
    (*out)[parsed.bench] = std::move(parsed);
  }
  return true;
}

enum class Direction { kHigherIsBetter, kLowerIsBetter, kInfo };

Direction DirectionOf(const std::string& key) {
  auto contains = [&key](const char* needle) {
    return key.find(needle) != std::string::npos;
  };
  if (contains("qps") || contains("speedup")) {
    return Direction::kHigherIsBetter;
  }
  if (contains("seconds") || contains("_ms") || contains("bytes") ||
      contains("overhead") || contains("latency")) {
    return Direction::kLowerIsBetter;
  }
  return Direction::kInfo;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.05;
  std::vector<fs::path> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::strtod(argv[i] + 12, nullptr);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--threshold=FRACTION] OLD NEW\n"
                  "  OLD, NEW: bench JSON files, or directories of them\n"
                  "  exits 1 iff any directed metric regresses beyond\n"
                  "  the threshold (default 0.05 = 5%%)\n",
                  argv[0]);
      return 0;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr, "usage: %s [--threshold=FRACTION] OLD NEW\n",
                 argv[0]);
    return 2;
  }

  std::map<std::string, BenchFile> old_set, new_set;
  if (!LoadPath(paths[0], &old_set) || !LoadPath(paths[1], &new_set)) {
    return 2;
  }

  int regressions = 0;
  int compared = 0;
  for (const auto& [bench, old_file] : old_set) {
    auto it = new_set.find(bench);
    if (it == new_set.end()) {
      std::printf("%s: only in %s\n", bench.c_str(),
                  paths[0].string().c_str());
      continue;
    }
    const BenchFile& new_file = it->second;
    std::printf("%s\n", bench.c_str());
    std::printf("  %-28s %14s %14s %9s  %s\n", "metric", "old", "new",
                "delta", "verdict");
    for (const auto& [key, old_value] : old_file.metrics) {
      auto nit = new_file.metrics.find(key);
      if (nit == new_file.metrics.end()) {
        std::printf("  %-28s %14.6g %14s\n", key.c_str(), old_value,
                    "(gone)");
        continue;
      }
      const double new_value = nit->second;
      const double delta = old_value != 0.0
                               ? new_value / old_value - 1.0
                               : (new_value == 0.0 ? 0.0 : INFINITY);
      const Direction dir = DirectionOf(key);
      const char* verdict = "";
      if (dir != Direction::kInfo) {
        ++compared;
        const bool worse = dir == Direction::kHigherIsBetter
                               ? delta < -threshold
                               : delta > threshold;
        const bool better = dir == Direction::kHigherIsBetter
                                ? delta > threshold
                                : delta < -threshold;
        if (worse) {
          verdict = "REGRESSION";
          ++regressions;
        } else if (better) {
          verdict = "improved";
        } else {
          verdict = "ok";
        }
      }
      std::printf("  %-28s %14.6g %14.6g %+8.1f%%  %s\n", key.c_str(),
                  old_value, new_value, delta * 1e2, verdict);
    }
    for (const auto& [key, new_value] : new_file.metrics) {
      if (old_file.metrics.count(key) == 0) {
        std::printf("  %-28s %14s %14.6g %9s  new\n", key.c_str(), "-",
                    new_value, "");
      }
    }
  }
  for (const auto& [bench, file] : new_set) {
    if (old_set.count(bench) == 0) {
      std::printf("%s: only in %s\n", bench.c_str(),
                  paths[1].string().c_str());
    }
  }
  std::printf("\n%d directed metrics compared, %d regression%s beyond "
              "%.0f%%\n",
              compared, regressions, regressions == 1 ? "" : "s",
              threshold * 1e2);
  return regressions > 0 ? 1 : 0;
}
