// sited: a parbox site daemon — hosts site shards (pinned
// hash-consing ExprFactories) and speaks the net/wire.h frame protocol
// to a coordinator running the `proc` execution backend.
//
// Usage:
//   sited --connect=ADDR --index=K [--log=FILE]
//       Dial a coordinator's listener (what `--backend=proc:N`
//       auto-spawns), serve until the coordinator hangs up, exit.
//   sited --listen=ADDR [--index=K] [--log=FILE]
//       Standalone mode: accept coordinators one at a time forever.
//       Point a coordinator at it with PARBOX_SITED_ADDRS=ADDR[,...].
//
// Addresses: "@name" (abstract Unix-domain), "/path/sock", or
// "host:port" (TCP). Fault injection: PARBOX_NET_FAULTS=seed makes
// this daemon's outbound frames subject to the same deterministic
// drop/delay/duplicate schedule the coordinator applies (seed 0 or
// unset disables). If --log is not given but PARBOX_SITED_LOG_DIR is
// set, logs go to $PARBOX_SITED_LOG_DIR/sited-<index>-<pid>.log.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/daemon.h"
#include "net/faults.h"

#include <unistd.h>

namespace {

void Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: sited --connect=ADDR --index=K [--log=FILE]\n"
               "       sited --listen=ADDR [--index=K] [--log=FILE]\n"
               "\n"
               "ADDR: @name (abstract unix socket), /path/sock, or "
               "host:port (TCP).\n"
               "Env:  PARBOX_NET_FAULTS=seed   deterministic fault "
               "injection (0 = off)\n"
               "      PARBOX_SITED_LOG_DIR     default log location "
               "when --log is absent\n");
}

}  // namespace

int main(int argc, char** argv) {
  parbox::net::DaemonOptions options;
  options.fault_seed = parbox::net::FaultInjector::SeedFromEnv();
  std::string log_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n &&
          arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--connect")) {
      options.connect_addr = v;
    } else if (const char* v = value_of("--listen")) {
      options.listen_addr = v;
    } else if (const char* v = value_of("--index")) {
      options.index = std::atoi(v);
    } else if (const char* v = value_of("--log")) {
      log_path = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "sited: unknown argument \"%s\"\n",
                   arg.c_str());
      Usage(stderr);
      return 2;
    }
  }
  if (options.connect_addr.empty() == options.listen_addr.empty()) {
    std::fprintf(stderr,
                 "sited: exactly one of --connect / --listen required\n");
    Usage(stderr);
    return 2;
  }
  if (log_path.empty()) {
    if (const char* dir = std::getenv("PARBOX_SITED_LOG_DIR");
        dir != nullptr && dir[0] != '\0') {
      log_path = std::string(dir) + "/sited-" +
                 std::to_string(options.index) + "-" +
                 std::to_string(getpid()) + ".log";
    }
  }
  std::FILE* log = nullptr;
  if (!log_path.empty()) {
    log = std::fopen(log_path.c_str(), "a");
    if (log == nullptr) {
      std::fprintf(stderr, "sited: cannot open log %s\n",
                   log_path.c_str());
    } else {
      setvbuf(log, nullptr, _IOLBF, 0);
    }
  }
  options.log = log;
  const int rc = parbox::net::RunSiteDaemon(options);
  if (log != nullptr) std::fclose(log);
  return rc;
}
