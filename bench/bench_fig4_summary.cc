// Figure 4 (the algorithm-summary table): measured visits, total (T)
// and parallel (P) computation, and communication for every algorithm
// over one fixed deployment — the empirical counterpart of the paper's
// asymptotic table.
//
// Expected shape: NaiveCentralized ships O(|T|) bytes; both naive
// algorithms have no parallelism (P == T); ParBoX visits every site
// once with traffic independent of |T|; FullDistParBoX trades extra
// per-fragment activations for even less traffic; LazyParBoX saves
// total computation at the cost of elapsed time.

#include "bench_common.h"
#include "core/evaluator.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 4", "measured algorithm summary (chain of 6, one "
                          "site per fragment)",
              config);

  Deployment d = MakeChain(6, config.total_bytes, config.seed);
  auto q = xmark::MakeMarkerQuery("v3");
  Check(q.status());
  std::printf("corpus: %zu elements, card(F) = %zu, |QList| = %zu\n\n",
              d.set.TotalElements(), d.set.live_count(), q->size());

  // One session, one prepared query, every registered evaluator.
  core::Session session = OpenSession(d);
  core::PreparedQuery prepared = PrepareQuery(&session, std::move(*q));
  std::printf("%-34s %-7s %-11s %-11s %-12s %-8s\n", "algorithm",
              "answer", "P=elapsed", "T=total(s)", "traffic(B)",
              "max-visits");
  for (const std::string& name :
       core::EvaluatorRegistry::Instance().Names()) {
    core::RunReport r = Exec(&session, prepared, name.c_str());
    std::printf("%-34s %-7s %-11.4f %-11.4f %-12llu %-8llu\n",
                r.algorithm.c_str(), r.answer ? "true" : "false",
                r.makespan_seconds, r.total_compute_seconds,
                static_cast<unsigned long long>(r.network_bytes),
                static_cast<unsigned long long>(r.max_visits_per_site()));
  }
  std::printf("\npaper's claims to check: ParBoX max-visits = 1; "
              "NaiveDistributed P ~= T (no parallelism); Central traffic "
              ">> ParBoX traffic; FullDist traffic < ParBoX traffic.\n");
  return 0;
}
