// X9 (acceptance bench): QueryService on the thread-pool backend.
//
// The point of ExecBackend: the *serving stack* — not a demo runner —
// exploits real parallelism. One QueryService per worker count serves
// the same burst of distinct queries (cache off, so every query does
// real site work) over a 16-site star deployment; per-site partial
// evaluation fans out across the pool while composition stays on the
// coordinator thread.
//
// Gate: >= 2x wall-clock speedup at 8 workers vs 1 worker. The gate
// needs hardware to scale on; hosts with < 4 hardware threads report
// the measurement and skip the enforcement (CI runs on >= 4).

#include <thread>

#include "bench_common.h"
#include "service/query_service.h"
#include "service/workload.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("X9", "backend throughput: QueryService on threads:N",
              config);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host has %u hardware threads\n\n", hw);

  Deployment d = MakeStar(16, config.total_bytes, config.seed);
  auto workload = service::Workload::Make(
      {.distinct_queries = 32, .min_qlist_size = 3, .zipf_s = 0.0});
  Check(workload.status());

  auto serve = [&](const std::string& backend, std::vector<char>* answers) {
    service::ServiceOptions options;
    options.backend = backend;
    options.enable_cache = false;  // every query does real site work
    service::QueryService svc(&d.set, &d.st, options);
    auto report = service::RunOpenLoop(&svc, *workload,
                                       {.num_queries = 32, .seed = 7});
    Check(report.status());
    Check(svc.status());
    if (answers != nullptr) {
      answers->clear();
      for (const service::QueryOutcome& o : svc.outcomes()) {
        answers->push_back(o.answer ? 1 : 0);
      }
    }
    return report->makespan_seconds;
  };

  // Warm the page cache and report the simulated baseline for context.
  std::vector<char> sim_answers;
  const double sim_virtual = serve("sim", &sim_answers);
  std::printf("sim (virtual)     : %.4f s makespan\n", sim_virtual);

  std::printf("%-12s %-14s %-10s\n", "workers", "wall (s)", "speedup");
  double wall_1 = 0.0, wall_8 = 0.0;
  for (int workers : {1, 2, 4, 8}) {
    std::vector<char> answers;
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      const double wall =
          serve("threads:" + std::to_string(workers), &answers);
      if (wall < best) best = wall;
    }
    if (answers != sim_answers) {
      std::fprintf(stderr, "FAIL: threads:%d answers diverged from sim\n",
                   workers);
      return 1;
    }
    if (workers == 1) wall_1 = best;
    if (workers == 8) wall_8 = best;
    std::printf("%-12d %-14.4f %-10.2fx\n", workers, best,
                wall_1 > 0.0 ? wall_1 / best : 1.0);
  }

  const double speedup = wall_8 > 0.0 ? wall_1 / wall_8 : 0.0;
  std::printf("\n8-worker speedup over 1 worker: %.2fx (gate: >= 2x)\n",
              speedup);
  JsonReport json("bench_x9_backend_throughput");
  json.Add("wall_1_worker_seconds", wall_1);
  json.Add("wall_8_workers_seconds", wall_8);
  json.Add("speedup", speedup);
  json.Add("hardware_threads", hw);
  if (hw < 4) {
    std::printf("SKIPPED: host has %u hardware threads; the parallelism "
                "gate needs >= 4 to be meaningful. Answers verified "
                "identical to the sim at every worker count.\n",
                hw);
    return 0;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: expected >= 2x wall-clock speedup at 8 workers, "
                 "measured %.2fx\n",
                 speedup);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
