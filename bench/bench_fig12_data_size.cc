// Figure 12: scalability in data size over the bushy fragment tree FT3
// (Fig. 6), cumulative corpus swept over 8 growing sizes, for
// |QList(q)| in {2, 8, 15, 23}.
//
// Expected shape (paper): for each query size, evaluation time is
// linear in the data size; larger queries grow gracefully over
// similarly sized data.
//
// The paper sweeps 45..160 MB; the default here scales that span down
// by the same factor as PARBOX_BENCH_BYTES (interpreted as the
// *largest* corpus of the sweep).

#include "bench_common.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 12", "runtime vs data size on FT3, per query size",
              config);

  // The paper's x-axis: 45,60,75,90,110,130,145,160 MB; normalize so
  // the last point equals the configured byte budget.
  const double kPaperSizes[] = {45, 60, 75, 90, 110, 130, 145, 160};
  std::printf("%-12s", "bytes");
  for (int size : xmark::kPaperQuerySizes) {
    std::printf(" |QList|=%-6d", size);
  }
  std::printf("\n");
  for (double paper_mb : kPaperSizes) {
    uint64_t bytes =
        static_cast<uint64_t>(paper_mb / 160.0 * config.total_bytes);
    Deployment d = MakeBushy(bytes, config.seed);
    core::Session session = OpenSession(d);
    std::printf("%-12llu", static_cast<unsigned long long>(bytes));
    for (int size : xmark::kPaperQuerySizes) {
      core::PreparedQuery prepared =
          PrepareQuery(&session, QueryOfSize(size));
      core::RunReport report = Exec(&session, prepared);
      std::printf(" %-14.4f", report.makespan_seconds);
    }
    std::printf("\n");
  }
  std::printf("\nshape check: each column grows ~linearly in bytes.\n");
  return 0;
}
