// X2 (ablation, google-benchmark): the formula library.
//
// DESIGN.md calls out hash-consing + compFm folding as the mechanism
// that keeps partial answers within the O(card(F_j)) size bound. These
// microbenchmarks quantify the cost of the smart constructors, of
// evaluation/substitution, and of the wire codec.

#include <benchmark/benchmark.h>

#include "boolexpr/expr.h"
#include "boolexpr/serialize.h"
#include "common/rng.h"

namespace {

using namespace parbox;
using bexpr::ExprFactory;
using bexpr::ExprId;
using bexpr::VarId;
using bexpr::VectorKind;

VarId V(int32_t fragment, int32_t index) {
  return VarId{fragment, VectorKind::kV, index};
}

ExprId BuildRandom(ExprFactory* f, Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.2)) {
    return rng->Bernoulli(0.3)
               ? f->FromBool(rng->Bernoulli(0.5))
               : f->Var(V(static_cast<int32_t>(rng->Uniform(8)),
                          static_cast<int32_t>(rng->Uniform(16))));
  }
  switch (rng->Uniform(3)) {
    case 0:
      return f->Not(BuildRandom(f, rng, depth - 1));
    case 1:
      return f->And(BuildRandom(f, rng, depth - 1),
                    BuildRandom(f, rng, depth - 1));
    default:
      return f->Or(BuildRandom(f, rng, depth - 1),
                   BuildRandom(f, rng, depth - 1));
  }
}

void BM_SmartConstructors(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ExprFactory f;
    Rng rng(42);
    for (int i = 0; i < 100; ++i) {
      benchmark::DoNotOptimize(BuildRandom(&f, &rng, depth));
    }
    state.counters["interned_nodes"] =
        static_cast<double>(f.total_nodes());
  }
}
BENCHMARK(BM_SmartConstructors)->Arg(3)->Arg(6)->Arg(9);

void BM_ConstantFoldingFastPath(benchmark::State& state) {
  // The inner loop of partial evaluation: OR-ing a constant into an
  // accumulator (the CV/DV updates) must be branch-cheap.
  ExprFactory f;
  ExprId var = f.Var(V(1, 1));
  for (auto _ : state) {
    ExprId acc = f.False();
    for (int i = 0; i < 1000; ++i) {
      acc = f.Or(acc, f.False());
      acc = f.And(f.True(), acc);
    }
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(var);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_ConstantFoldingFastPath);

void BM_Substitute(benchmark::State& state) {
  ExprFactory f;
  Rng rng(7);
  ExprId e = BuildRandom(&f, &rng, static_cast<int>(state.range(0)));
  bexpr::Assignment a;
  for (int32_t frag = 0; frag < 8; ++frag) {
    for (int32_t idx = 0; idx < 16; ++idx) {
      a.Set(V(frag, idx), (frag + idx) % 2 == 0);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.Substitute(e, a));
  }
}
BENCHMARK(BM_Substitute)->Arg(6)->Arg(10);

void BM_EvalPartial(benchmark::State& state) {
  ExprFactory f;
  Rng rng(7);
  ExprId e = BuildRandom(&f, &rng, 10);
  bexpr::Assignment a;  // half the variables known
  for (int32_t frag = 0; frag < 4; ++frag) {
    for (int32_t idx = 0; idx < 16; ++idx) {
      a.Set(V(frag, idx), idx % 2 == 0);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.EvalPartial(e, a));
  }
}
BENCHMARK(BM_EvalPartial);

void BM_SerializeRoundTrip(benchmark::State& state) {
  ExprFactory f;
  Rng rng(11);
  std::vector<ExprId> roots;
  for (int i = 0; i < 3 * 16; ++i) {  // a triplet of 16-entry vectors
    roots.push_back(BuildRandom(&f, &rng, 5));
  }
  for (auto _ : state) {
    std::string wire = bexpr::SerializeExprs(f, roots);
    ExprFactory g;
    auto decoded = bexpr::DeserializeExprs(&g, wire);
    benchmark::DoNotOptimize(decoded);
    state.counters["wire_bytes"] = static_cast<double>(wire.size());
  }
}
BENCHMARK(BM_SerializeRoundTrip);

}  // namespace

BENCHMARK_MAIN();
