// X4 (extension bench): ParBoX on real threads.
//
// The simulator shows *virtual* speedups; this bench shows genuine
// wall-clock parallelism on the host: one corpus, fragmented 1..N
// ways, partial evaluation running on one thread per "site". The
// centralized evaluation of the same data is the 1-thread baseline.
// Shape: wall time falls with fragments until the machine runs out of
// cores; total site time stays roughly constant.

#include <thread>

#include "bench_common.h"
#include "core/threaded.h"
#include "xpath/eval.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("X4", "real-thread ParBoX: wall time vs fragment count",
              config);
  std::printf("host has %u hardware threads\n\n",
              std::thread::hardware_concurrency());

  xpath::NormQuery q = QueryOfSize(8);
  std::printf("%-10s %-14s %-16s %-12s\n", "threads", "wall (s)",
              "site-sum (s)", "wire bytes");
  for (int fragments : {1, 2, 4, 8, 16}) {
    Deployment d = MakeStar(fragments, config.total_bytes, config.seed);
    // Warm once (page in the corpus), then take the best of 3.
    double best_wall = 1e30, site_sum = 0;
    uint64_t wire = 0;
    bool answer = false;
    for (int rep = 0; rep < 3; ++rep) {
      auto report = core::RunParBoXThreads(d.set, d.st, q);
      Check(report.status());
      if (report->wall_seconds < best_wall) {
        best_wall = report->wall_seconds;
        site_sum = report->sum_site_seconds;
        wire = report->wire_bytes;
        answer = report->answer;
      }
    }
    (void)answer;
    std::printf("%-10d %-14.4f %-16.4f %-12llu\n", fragments, best_wall,
                site_sum, static_cast<unsigned long long>(wire));
  }
  std::printf("\nshape check: wall time drops with fragments up to the "
              "host's core count (on a single-core host it stays flat "
              "while site-sum grows with scheduling overhead); the "
              "answer and wire format are identical to the simulated "
              "runner either way.\n");
  return 0;
}
