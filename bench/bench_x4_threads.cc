// X4 (extension bench): ParBoX on the real-thread backend.
//
// The simulator shows *virtual* speedups; this bench shows genuine
// wall-clock parallelism on the host, through the same unified path
// everything else uses: a Session over the "threads:N" ExecBackend,
// executing the registered "parbox" evaluator. One corpus, fragmented
// 16 ways over 16 sites; the worker count sweeps 1..N. Shape: wall
// time falls with workers until the machine runs out of cores; total
// site time stays roughly constant; answers, visits and wire traffic
// are identical to the simulated run at every point.

#include <thread>

#include "bench_common.h"
#include "core/session.h"
#include "xpath/eval.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("X4", "thread-backend ParBoX: wall time vs worker count",
              config);
  std::printf("host has %u hardware threads\n\n",
              std::thread::hardware_concurrency());

  xpath::NormQuery q = QueryOfSize(8);
  Deployment d = MakeStar(16, config.total_bytes, config.seed);

  // The simulated run is the oracle: same answer, same wire traffic.
  auto sim_session = core::Session::Create(&d.set, &d.st);
  Check(sim_session.status());
  auto sim_q = sim_session->Prepare(&q);
  Check(sim_q.status());
  auto sim_report = sim_session->Execute(*sim_q);
  Check(sim_report.status());

  std::printf("%-10s %-14s %-16s %-14s %-8s\n", "workers", "wall (s)",
              "site-sum (s)", "wire bytes", "answer");
  for (int workers : {1, 2, 4, 8, 16}) {
    core::SessionOptions options;
    options.backend = "threads:" + std::to_string(workers);
    auto session = core::Session::Create(&d.set, &d.st, options);
    Check(session.status());
    auto prepared = session->Prepare(&q);
    Check(prepared.status());
    // Warm once (pages + worker factories), then take the best of 3.
    double best_wall = 1e30, site_sum = 0;
    uint64_t wire = 0;
    bool answer = false;
    for (int rep = 0; rep < 4; ++rep) {
      auto report = session->Execute(*prepared);
      Check(report.status());
      if (rep == 0) continue;
      if (report->makespan_seconds < best_wall) {
        best_wall = report->makespan_seconds;
        site_sum = report->total_compute_seconds;
        wire = report->network_bytes;
        answer = report->answer;
      }
    }
    if (answer != sim_report->answer || wire != sim_report->network_bytes) {
      std::fprintf(stderr,
                   "FAIL: threads:%d diverged from the sim oracle "
                   "(answer %d vs %d, wire %llu vs %llu)\n",
                   workers, answer, sim_report->answer,
                   static_cast<unsigned long long>(wire),
                   static_cast<unsigned long long>(
                       sim_report->network_bytes));
      return 1;
    }
    std::printf("%-10d %-14.4f %-16.4f %-14llu %-8s\n", workers, best_wall,
                site_sum, static_cast<unsigned long long>(wire),
                answer ? "true" : "false");
  }
  std::printf("\nshape check: wall time drops with workers up to the "
              "host's core count (on a single-core host it stays flat "
              "while site-sum absorbs scheduling overhead); answers and "
              "wire traffic are identical to the simulated oracle at "
              "every worker count.\n");
  return 0;
}
