// X3 (ablation, google-benchmark): substrate kernel throughput — the
// centralized bottomUp evaluator (the O(|T|·|q|) baseline every bound
// in the paper is expressed against), the partial-evaluation kernel,
// the XML parser and the corpus generator.

#include <benchmark/benchmark.h>

#include "boolexpr/expr.h"
#include "common/rng.h"
#include "core/partial_eval.h"
#include "fragment/strategies.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpath/eval.h"
#include "xpath/normalize.h"

namespace {

using namespace parbox;

xml::Document MakeCorpus(uint64_t bytes) {
  return xmark::GenerateStarDocument(1, bytes, 42);
}

void BM_CentralizedEval(benchmark::State& state) {
  xml::Document doc = MakeCorpus(1 << 20);
  auto q = xmark::MakeQueryOfQListSize(static_cast<int>(state.range(0)));
  size_t elements = xml::CountElements(doc.root());
  for (auto _ : state) {
    xpath::EvalCounters counters;
    auto result = xpath::EvalBoolean(*doc.root(), *q, &counters);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(elements) * state.range(0));
  state.counters["elements"] = static_cast<double>(elements);
}
BENCHMARK(BM_CentralizedEval)->Arg(2)->Arg(8)->Arg(15)->Arg(23);

void BM_PartialEvalFragment(benchmark::State& state) {
  // A fragment with sub-fragments: the formula-domain kernel.
  xml::Document doc = xmark::GenerateChainDocument(4, 1 << 18, 42);
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  auto created = frag::SplitAtAllLabeled(&*set, "site");
  auto q = xmark::MakeQueryOfQListSize(8);
  for (auto _ : state) {
    bexpr::ExprFactory factory;
    xpath::EvalCounters counters;
    auto eq =
        core::PartialEvalFragment(&factory, *q, *set, 0, &counters);
    benchmark::DoNotOptimize(eq);
    state.SetItemsProcessed(static_cast<int64_t>(counters.ops));
  }
}
BENCHMARK(BM_PartialEvalFragment);

void BM_XmlParse(benchmark::State& state) {
  xml::Document doc = MakeCorpus(static_cast<uint64_t>(state.range(0)));
  std::string text = xml::WriteXml(doc.root());
  for (auto _ : state) {
    auto parsed = xml::ParseXml(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_XmlParse)->Arg(1 << 18)->Arg(1 << 21);

void BM_XmlWrite(benchmark::State& state) {
  xml::Document doc = MakeCorpus(1 << 20);
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string text = xml::WriteXml(doc.root());
    benchmark::DoNotOptimize(text);
    bytes = static_cast<int64_t>(text.size());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_XmlWrite);

void BM_XmarkGenerate(benchmark::State& state) {
  for (auto _ : state) {
    xml::Document doc =
        MakeCorpus(static_cast<uint64_t>(state.range(0)));
    benchmark::DoNotOptimize(doc.root());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XmarkGenerate)->Arg(1 << 18)->Arg(1 << 21);

void BM_QueryCompile(benchmark::State& state) {
  const char* text =
      "[//broker[//stock/code/text() = \"GOOG\" and "
      "not(//stock/code/text() = \"YHOO\")] or //market[name]]";
  for (auto _ : state) {
    auto q = xpath::CompileQuery(text);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_QueryCompile);

}  // namespace

BENCHMARK_MAIN();
