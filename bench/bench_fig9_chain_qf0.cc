// Figure 9: query q_F0 — satisfied at the root fragment of the chain.
//
// Expected shape (paper): all three algorithms nearly identical,
// because LazyParBoX stops after depth 0 while the eager algorithms'
// extra fragments evaluate in parallel and add no elapsed time; lazy
// touches only 1-2 fragments (huge total-computation savings).

#include "bench_chain_common.h"

int main() {
  return parbox::bench::RunChainFigure(
      "Figure 9", "chain FT2, query satisfied at F0",
      [](int) { return 0; });
}
