// Experiment X6: QueryService throughput vs a sequential ParBoX loop.
//
// A zipf-skewed workload of 256 queries (16 distinct) over the FT1
// star corpus, served three ways:
//
//   sequential — one RunParBoX per query, one at a time (the seed's
//                only serving story): total time = sum of makespans.
//   batch-only — QueryService with the result cache disabled: per-site
//                batch rounds amortize visits, message latency and
//                duplicate evaluations across 64 in-flight queries.
//   batch+cache— the full service: repeated fingerprints answer at the
//                coordinator with zero site visits.
//
// Every service answer is checked bit-identical to the standalone
// RunParBoX answer for the same query (the process exits 1 on any
// mismatch). The acceptance target is batched throughput >= 2x
// sequential at 64 concurrent in-flight queries; in practice the
// amortization lands far beyond that.

#include <algorithm>
#include <chrono>

#include "bench_common.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "service/workload.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Experiment X6",
              "QueryService throughput, 64 in-flight queries", config);

  Deployment d = MakeStar(8, config.total_bytes, config.seed);
  std::printf("%zu elements, %zu fragments, %d sites\n",
              d.set.TotalElements(), d.set.live_count(), d.st.num_sites());

  auto workload = service::Workload::Make(service::WorkloadSpec{
      .distinct_queries = 16, .min_qlist_size = 2, .zipf_s = 1.0});
  Check(workload.status());

  service::ClosedLoopOptions loop;
  loop.num_queries = 256;
  loop.concurrency = 64;
  loop.seed = config.seed;

  // ---- Standalone answers + per-query sequential cost ----
  core::Session session = OpenSession(d);
  std::vector<bool> expected;
  std::vector<double> makespans;
  for (size_t i = 0; i < workload->size(); ++i) {
    auto q = workload->Materialize(i);
    Check(q.status());
    core::PreparedQuery prepared = PrepareQuery(&session, std::move(*q));
    core::RunReport report = Exec(&session, prepared);
    expected.push_back(report.answer);
    makespans.push_back(report.makespan_seconds);
  }

  auto run_service = [&](bool enable_cache,
                         std::vector<size_t>* indices)
      -> service::ServiceReport {
    service::ServiceOptions options;
    options.enable_cache = enable_cache;
    service::QueryService svc(&d.set, &d.st, options);
    auto report = service::RunClosedLoop(&svc, *workload, loop, indices);
    Check(report.status());
    // Bit-identical answers per submission, or the bench fails.
    for (const auto& outcome : svc.outcomes()) {
      size_t index = (*indices)[outcome.query_id];
      if (outcome.answer != expected[index]) {
        std::fprintf(stderr,
                     "ANSWER MISMATCH: submission %llu (portfolio %zu)\n",
                     static_cast<unsigned long long>(outcome.query_id),
                     index);
        std::exit(1);
      }
    }
    return *report;
  };

  std::vector<size_t> indices;
  service::ServiceReport full = run_service(/*enable_cache=*/true,
                                            &indices);
  std::vector<size_t> indices_nocache;
  service::ServiceReport batch_only =
      run_service(/*enable_cache=*/false, &indices_nocache);

  double sequential_seconds = 0.0;
  for (size_t index : indices) sequential_seconds += makespans[index];
  const double n = static_cast<double>(loop.num_queries);
  const double seq_qps = n / sequential_seconds;

  std::printf("\n%-14s %-12s %-12s %-10s %-10s %-10s\n", "mode",
              "time (s)", "qps", "p95 (ms)", "visits", "net KB");
  std::printf("%-14s %-12.4f %-12.1f %-10s %-10s %-10s\n", "sequential",
              sequential_seconds, seq_qps, "-", "-", "-");
  auto row = [&](const char* name, const service::ServiceReport& r) {
    std::printf("%-14s %-12.4f %-12.1f %-10.3f %-10llu %-10.1f\n", name,
                r.makespan_seconds, r.throughput_qps,
                r.latency.Percentile(95) * 1e3,
                static_cast<unsigned long long>(r.total_visits),
                r.network_bytes / 1024.0);
  };
  row("batch-only", batch_only);
  row("batch+cache", full);
  std::printf("\n%s\n", full.ToString().c_str());

  // ---- Tracing overhead gate (wall clock, best of 3) ----
  //
  // The observability layer must be structurally free when absent and
  // near-free when attached-but-disabled: with no tracer the session
  // never installs the TracingBackend decorator, and a disabled tracer
  // early-outs before touching any parcel. Gate: the disabled pass
  // stays within 3% of the no-tracer baseline (plus a 20 ms absolute
  // floor so a fast run is not failed on scheduler jitter alone).
  auto time_full_service = [&](obs::Tracer* tracer) -> double {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      service::ServiceOptions options;
      options.enable_cache = true;
      options.tracer = tracer;
      service::QueryService svc(&d.set, &d.st, options);
      const auto t0 = std::chrono::steady_clock::now();
      Check(service::RunClosedLoop(&svc, *workload, loop).status());
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best,
                      std::chrono::duration<double>(t1 - t0).count());
      if (tracer != nullptr) tracer->Reset();
    }
    return best;
  };
  const double wall_base = time_full_service(nullptr);
  obs::Tracer overhead_tracer;
  overhead_tracer.set_enabled(false);
  const double wall_off = time_full_service(&overhead_tracer);
  overhead_tracer.set_enabled(true);
  const double wall_on = time_full_service(&overhead_tracer);
  const double off_overhead = wall_base > 0.0
                                  ? wall_off / wall_base - 1.0
                                  : 0.0;
  const double on_overhead = wall_base > 0.0
                                 ? wall_on / wall_base - 1.0
                                 : 0.0;
  std::printf("\ntracing wall clock (best of 3): none %.4fs, "
              "disabled %.4fs (%+.1f%%), enabled %.4fs (%+.1f%%)\n",
              wall_base, wall_off, off_overhead * 1e2, wall_on,
              on_overhead * 1e2);

  const double speedup_batch = batch_only.throughput_qps / seq_qps;
  const double speedup_full = full.throughput_qps / seq_qps;
  JsonReport json("bench_x6_service_throughput");
  json.Add("sequential_qps", seq_qps);
  json.Add("batch_only_qps", batch_only.throughput_qps);
  json.Add("batch_cache_qps", full.throughput_qps);
  json.Add("speedup_batch", speedup_batch);
  json.Add("speedup_full", speedup_full);
  json.Add("tracing_off_overhead", off_overhead);
  json.Add("tracing_on_overhead", on_overhead);
  std::printf("\nspeedup vs sequential: batch-only %.1fx, batch+cache "
              "%.1fx (target >= 2x)\n",
              speedup_batch, speedup_full);
  if (speedup_batch < 2.0 || speedup_full < 2.0) {
    std::fprintf(stderr, "FAILED: batched service below 2x sequential\n");
    return 1;
  }
  if (wall_off > wall_base * 1.03 + 0.02) {
    std::fprintf(stderr,
                 "FAILED: tracing-disabled run %.4fs exceeds 3%% over "
                 "the no-tracer baseline %.4fs\n",
                 wall_off, wall_base);
    return 1;
  }
  std::printf("answers: all %zu bit-identical to standalone RunParBoX\n",
              static_cast<size_t>(n));
  return 0;
}
