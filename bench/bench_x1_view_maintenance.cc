// X1 (extension bench, Sec. 5): incremental view maintenance vs
// recomputation from scratch.
//
// The paper claims (a) maintenance is localized to the updated
// fragment's site and (b) its traffic depends on neither |T| nor the
// update size. We sweep update batch sizes on one fragment of a star
// deployment and compare the incremental refresh against a full
// ParBoX re-evaluation.

#include "bench_common.h"

#include "core/view.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("X1", "incremental view maintenance vs full re-evaluation",
              config);

  Deployment d = MakeStar(8, config.total_bytes, config.seed);
  auto q = xpath::CompileQuery("[//item[payment = \"Creditcard\"] and "
                               "//person[creditcard]]");
  Check(q.status());

  std::vector<frag::SiteId> sites(d.set.table_size());
  for (size_t i = 0; i < sites.size(); ++i) {
    sites[i] = d.st.site_of(static_cast<frag::FragmentId>(i));
  }
  auto view_result = core::MaterializedView::Create(&d.set, sites, &*q);
  Check(view_result.status());
  core::MaterializedView view = std::move(*view_result);

  // Full re-evaluation baseline, through a prepared session.
  core::Session session = OpenSession(d);
  core::PreparedQuery prepared = PrepareQuery(&session, &*q);
  core::RunReport full = Exec(&session, prepared);
  std::printf("full ParBoX re-evaluation: elapsed %.4f s, total compute "
              "%.4f s, %llu B, %llu visits\n\n",
              full.makespan_seconds, full.total_compute_seconds,
              static_cast<unsigned long long>(full.network_bytes),
              static_cast<unsigned long long>(full.total_visits()));

  const frag::FragmentId target = d.set.live_ids().back();
  std::printf("%-14s %-14s %-16s %-12s %-10s %-20s\n", "batch-size",
              "refresh (s)", "refresh T (s)", "traffic(B)", "visits",
              "compute vs full");
  for (int batch : {1, 4, 16, 64, 256, 1024}) {
    xml::Node* root = d.set.fragment(target).root;
    for (int i = 0; i < batch; ++i) {
      auto inserted = view.InsNode(target, root, "audit", "entry");
      Check(inserted.status());
    }
    auto report = view.Refresh(target);
    Check(report.status());
    std::printf("%-14d %-14.4f %-16.4f %-12llu %-10llu %.1fx less\n",
                batch, report->makespan_seconds,
                report->total_compute_seconds,
                static_cast<unsigned long long>(report->network_bytes),
                static_cast<unsigned long long>(report->total_visits()),
                full.total_compute_seconds /
                    report->total_compute_seconds);
  }
  std::printf("\nshape check: refresh traffic and visits are constant "
              "across batch sizes (claims (a) and (b) of Sec. 5); the "
              "incremental total computation stays ~1/card(F) of a full "
              "re-evaluation, which also wins on elapsed time only when "
              "sites are contended.\n");
  return 0;
}
