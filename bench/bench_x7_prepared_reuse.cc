// Experiment X7: prepared-query reuse — the acceptance bench for the
// Session / PreparedQuery API.
//
// The serving pattern the Session API exists for: the same query
// arrives over and over against a long-lived deployment. Two ways to
// pay for it, measured in host wall-clock time per call:
//
//   parse-per-call — xpath::CompileQuery + core::RunParBoX for every
//                    arrival (the legacy pattern): each call re-parses
//                    and re-normalizes the text, re-validates,
//                    re-fingerprints, rebuilds a cluster and a formula
//                    factory, and re-partitions the sites.
//   prepared       — Session::Prepare once, Session::Execute per
//                    arrival: the hot path starts at evaluation; the
//                    cluster is rewound, not rebuilt, and the shared
//                    hash-consing factory serves interned formulas
//                    back to every run.
//
// Virtual-clock results are bit-identical by construction (asserted
// below); the win is real host time. Gate: prepared re-execution must
// be >= 1.5x faster per call on mean wall time, or the process exits 1.

#include <chrono>
#include <string>

#include "bench_common.h"
#include "common/stats.h"
#include "core/algorithms.h"

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Experiment X7",
              "prepared-query reuse vs parse-per-call (host wall time)",
              config);

  // A point-lookup-sized deployment, deliberately pinned (not scaled by
  // PARBOX_BENCH_BYTES): this gate isolates the per-call API overhead —
  // parse, validation, fingerprinting, cluster construction, partition
  // planning, cold-factory interning — which is what Prepare/Execute
  // amortizes. Corpus-scale behaviour is swept by the other benches;
  // here a large corpus would bury the fixed costs under evaluation
  // time that both paths share.
  Deployment d = MakeStar(2, 512, config.seed);
  const std::string query_text =
      "[//item[payment = \"Creditcard\" and shipping] and "
      "//person[creditcard and profile/interest] and "
      "not(//category[name = \"none\"])]";
  const int kWarmup = 64;
  const int kCalls = 2048;
  std::printf("%zu elements, %zu fragments, %d sites\nquery: %s\n",
              d.set.TotalElements(), d.set.live_count(), d.st.num_sites(),
              query_text.c_str());

  // ---- parse-per-call ----
  Distribution per_call;
  bool baseline_answer = false;
  double baseline_makespan = 0.0;
  for (int i = -kWarmup; i < kCalls; ++i) {
    const double start = NowSeconds();
    auto q = xpath::CompileQuery(query_text);
    Check(q.status());
    auto report = core::RunParBoX(d.set, d.st, *q);
    Check(report.status());
    const double elapsed = NowSeconds() - start;
    if (i >= 0) per_call.Add(elapsed);
    baseline_answer = report->answer;
    baseline_makespan = report->makespan_seconds;
  }

  // ---- prepared ----
  core::Session session = OpenSession(d);
  core::PreparedQuery prepared = [&] {
    auto p = session.Prepare(query_text);
    Check(p.status());
    return std::move(*p);
  }();
  Distribution per_exec;
  for (int i = -kWarmup; i < kCalls; ++i) {
    const double start = NowSeconds();
    core::RunReport report = Exec(&session, prepared);
    const double elapsed = NowSeconds() - start;
    if (i >= 0) per_exec.Add(elapsed);
    // The virtual-cost profile must not drift from a fresh run.
    if (report.answer != baseline_answer ||
        report.makespan_seconds != baseline_makespan) {
      std::fprintf(stderr, "RESULT DRIFT: prepared execution differs "
                           "from parse-per-call\n");
      return 1;
    }
  }

  std::printf("\n%-16s %s\n", "parse-per-call",
              per_call.Summary("us", 1e6).c_str());
  std::printf("%-16s %s\n", "prepared",
              per_exec.Summary("us", 1e6).c_str());

  const double speedup_mean = per_call.mean() / per_exec.mean();
  const double speedup_p50 =
      per_call.Percentile(50) / per_exec.Percentile(50);
  std::printf("\nspeedup: mean %.2fx, p50 %.2fx (target >= 1.5x mean)\n",
              speedup_mean, speedup_p50);
  JsonReport json("bench_x7_prepared_reuse");
  json.Add("parse_per_call_mean_seconds", per_call.mean());
  json.Add("prepared_mean_seconds", per_exec.mean());
  json.Add("speedup_mean", speedup_mean);
  json.Add("speedup_p50", speedup_p50);
  if (speedup_mean < 1.5) {
    std::fprintf(stderr,
                 "FAILED: prepared reuse below 1.5x parse-per-call\n");
    return 1;
  }
  std::printf("answers: all %d executions bit-identical to "
              "parse-per-call\n",
              kCalls);
  return 0;
}
