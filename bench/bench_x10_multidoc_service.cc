// X10 (acceptance bench): multi-document serving on one shared
// backend vs isolated per-document services.
//
// The point of the catalog refactor: N documents share ONE worker
// pool instead of standing up N clusters. Eight small star
// deployments each serve a burst of distinct queries (cache off, so
// every query does real site work):
//
//   * isolated — eight dedicated QueryServices, each with its own
//     threads:8 pool, run one after another (the pre-catalog
//     architecture: one deployment per document). Per-document
//     parallelism is capped by the document's handful of sites, so
//     most of each pool idles.
//   * shared   — one catalog::Catalog + service::CatalogService on a
//     single threads:8 host; all eight documents' rounds interleave
//     on the same workers.
//
// Gate: shared aggregate throughput >= 1.5x the isolated aggregate
// (total queries over summed wall time), enforced on hosts with >= 4
// hardware threads (CI). Answers are checked per document against the
// sim oracle at both configurations.

#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "catalog/catalog.h"
#include "fragment/placement.h"
#include "service/catalog_service.h"
#include "service/query_service.h"
#include "service/workload.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("X10", "multi-document serving: 8 docs on one threads:8 host",
              config);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host has %u hardware threads\n\n", hw);

  constexpr int kDocs = 8;
  constexpr int kSitesPerDoc = 5;
  constexpr size_t kQueriesPerDoc = 24;

  auto workload = service::Workload::Make(
      {.distinct_queries = 16, .min_qlist_size = 3, .zipf_s = 0.0});
  Check(workload.status());

  service::ServiceOptions options;
  options.enable_cache = false;  // every query does real site work

  // One deployment generator per document, deterministic per seed so
  // the isolated, shared, and oracle runs see identical documents.
  auto make_doc = [&](int d) {
    return MakeStar(kSitesPerDoc, config.total_bytes / kDocs,
                    config.seed + static_cast<uint64_t>(d));
  };
  auto doc_name = [](int d) { return "doc" + std::to_string(d); };

  // Per-document answer streams for one serve of `backend`; isolated
  // services, run sequentially.
  auto serve_isolated = [&](const std::string& backend,
                            std::vector<std::vector<char>>* answers,
                            double* wall_seconds) {
    answers->assign(kDocs, {});
    *wall_seconds = 0.0;
    for (int d = 0; d < kDocs; ++d) {
      Deployment dep = make_doc(d);
      service::ServiceOptions opts = options;
      opts.backend = backend;
      auto svc = service::QueryService::Create(&dep.set, &dep.st, opts);
      Check(svc.status());
      auto report = service::RunOpenLoop(
          svc->get(), *workload,
          {.num_queries = kQueriesPerDoc,
           .seed = 7 + static_cast<uint64_t>(d)});
      Check(report.status());
      Check((*svc)->status());
      for (const service::QueryOutcome& o : (*svc)->outcomes()) {
        (*answers)[d].push_back(o.answer ? 1 : 0);
      }
      *wall_seconds += report->makespan_seconds;
    }
  };

  auto serve_shared = [&](const std::string& backend,
                          std::vector<std::vector<char>>* answers,
                          double* wall_seconds) {
    catalog::CatalogOptions cat_options;
    cat_options.backend = backend;
    auto cat = catalog::Catalog::Create(cat_options);
    Check(cat.status());
    for (int d = 0; d < kDocs; ++d) {
      Deployment dep = make_doc(d);
      auto placement = frag::Placement::Create(
          dep.set, frag::AssignOneSitePerFragment(dep.set));
      Check(placement.status());
      Check((*cat)
                ->Open(doc_name(d), std::move(dep.set),
                       std::move(*placement))
                .status());
    }
    auto svc = service::CatalogService::Create(cat->get(), options);
    Check(svc.status());
    // The same per-document query sequences as the isolated runs.
    for (int d = 0; d < kDocs; ++d) {
      Rng draw(7 + static_cast<uint64_t>(d));
      for (size_t idx :
           workload->DrawIndices(kQueriesPerDoc, &draw)) {
        auto q = workload->Materialize(idx);
        Check(q.status());
        Check((*svc)->Submit(doc_name(d), std::move(*q), 0.0).status());
      }
    }
    const double makespan = (*svc)->Run();
    Check((*svc)->status());
    answers->assign(kDocs, {});
    for (int d = 0; d < kDocs; ++d) {
      const service::QueryService* qs =
          (*svc)->document_service(doc_name(d));
      for (const service::QueryOutcome& o : qs->outcomes()) {
        (*answers)[d].push_back(o.answer ? 1 : 0);
      }
    }
    *wall_seconds = makespan;
  };

  // Sim oracle (also warms the page cache).
  std::vector<std::vector<char>> oracle;
  double sim_wall = 0.0;
  serve_isolated("sim", &oracle, &sim_wall);
  std::printf("sim oracle (virtual) : %.4f s summed makespan\n", sim_wall);

  std::vector<std::vector<char>> shared_sim;
  double shared_sim_wall = 0.0;
  serve_shared("sim", &shared_sim, &shared_sim_wall);
  if (shared_sim != oracle) {
    std::fprintf(stderr,
                 "FAIL: shared-sim answers diverged from the oracle\n");
    return 1;
  }

  const int total =
      static_cast<int>(kQueriesPerDoc) * kDocs;
  double isolated_wall = 1e30;
  double shared_wall = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<std::vector<char>> answers;
    double wall = 0.0;
    serve_isolated("threads:8", &answers, &wall);
    if (answers != oracle) {
      std::fprintf(stderr,
                   "FAIL: isolated threads answers diverged from sim\n");
      return 1;
    }
    if (wall < isolated_wall) isolated_wall = wall;
    serve_shared("threads:8", &answers, &wall);
    if (answers != oracle) {
      std::fprintf(stderr,
                   "FAIL: shared threads answers diverged from sim\n");
      return 1;
    }
    if (wall < shared_wall) shared_wall = wall;
  }

  const double isolated_qps = total / isolated_wall;
  const double shared_qps = total / shared_wall;
  const double speedup = shared_qps / isolated_qps;
  std::printf("%-26s %-12s %-14s\n", "configuration", "wall (s)",
              "agg q/s");
  std::printf("%-26s %-12.4f %-14.0f\n", "8x isolated threads:8",
              isolated_wall, isolated_qps);
  std::printf("%-26s %-12.4f %-14.0f\n", "shared threads:8 catalog",
              shared_wall, shared_qps);
  std::printf("\nshared/isolated aggregate throughput: %.2fx "
              "(gate: >= 1.5x)\n",
              speedup);

  JsonReport json("bench_x10_multidoc_service");
  json.Add("docs", kDocs);
  json.Add("queries_total", total);
  json.Add("isolated_wall_seconds", isolated_wall);
  json.Add("shared_wall_seconds", shared_wall);
  json.Add("isolated_qps", isolated_qps);
  json.Add("shared_qps", shared_qps);
  json.Add("speedup", speedup);
  json.Add("hardware_threads", hw);

  if (hw < 4) {
    std::printf("SKIPPED: host has %u hardware threads; the sharing "
                "gate needs >= 4 to be meaningful. Answers verified "
                "identical to the sim oracle in every configuration.\n",
                hw);
    return 0;
  }
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: expected >= 1.5x aggregate throughput from the "
                 "shared host, measured %.2fx\n",
                 speedup);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
