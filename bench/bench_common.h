// Shared scaffolding for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation section and prints it as an aligned table. Absolute
// numbers differ from the 2006 testbed (see DESIGN.md: the cluster is
// simulated and the corpus is scaled down by default); the *shape* —
// who wins, where crossovers happen — is the reproduction target.
//
// Scaling: the paper's corpora total 50 MB. By default the benches use
// PARBOX_BENCH_BYTES (default 6 MB) so the whole suite runs in a few
// minutes; set the environment variable, e.g.
//   PARBOX_BENCH_BYTES=52428800 ./bench_fig7_parbox_vs_central
// for paper-scale runs.

#ifndef PARBOX_BENCH_BENCH_COMMON_H_
#define PARBOX_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/session.h"
#include "fragment/fragment.h"
#include "fragment/source_tree.h"
#include "fragment/strategies.h"
#include "obs/metrics.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xpath/normalize.h"

namespace parbox::bench {

struct BenchConfig {
  uint64_t total_bytes = 6u << 20;  ///< cumulative corpus size
  uint64_t seed = 42;

  static BenchConfig FromEnv() {
    BenchConfig config;
    if (const char* bytes = std::getenv("PARBOX_BENCH_BYTES")) {
      config.total_bytes = std::strtoull(bytes, nullptr, 10);
    }
    if (const char* seed = std::getenv("PARBOX_BENCH_SEED")) {
      config.seed = std::strtoull(seed, nullptr, 10);
    }
    return config;
  }
};

inline void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

/// A fragmented, distributed corpus plus its source tree.
struct Deployment {
  frag::FragmentSet set;
  frag::SourceTree st;
};

/// Experiment 1/4 corpus (FT1): the root fragment F0 is itself an
/// XMark site holding 1/n of the data (exactly as in the paper, where
/// iteration 1 is a single 50 MB fragment at the coordinator), with
/// n-1 equal site fragments as direct sub-fragments. One machine per
/// fragment unless `one_site` (Experiment 4).
inline Deployment MakeStar(int fragments, uint64_t total_bytes,
                           uint64_t seed, bool one_site = false) {
  std::vector<std::vector<int>> topology(fragments);
  for (int i = 1; i < fragments; ++i) topology[0].push_back(i);
  std::vector<uint64_t> sizes(
      fragments, total_bytes / static_cast<uint64_t>(fragments));
  xml::Document doc = xmark::GenerateTreeDocument(topology, sizes, seed);
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  Check(set.status());
  Check(frag::SplitAtAllLabeled(&*set, "site").status());
  auto st = frag::SourceTree::Create(
      *set, one_site ? frag::AssignAllToOneSite(*set)
                     : frag::AssignOneSitePerFragment(*set));
  Check(st.status());
  return Deployment{std::move(*set), std::move(*st)};
}

/// Experiment 2 corpus: a version chain of `depth` sites (FT2).
inline Deployment MakeChain(int depth, uint64_t total_bytes, uint64_t seed) {
  xml::Document doc = xmark::GenerateChainDocument(
      depth, total_bytes / static_cast<uint64_t>(depth), seed);
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  Check(set.status());
  Check(frag::SplitAtAllLabeled(&*set, "site").status());
  auto st =
      frag::SourceTree::Create(*set, frag::AssignOneSitePerFragment(*set));
  Check(st.status());
  return Deployment{std::move(*set), std::move(*st)};
}

/// Experiment 3 corpus: the bushy FT3 of Fig. 6 — eight sites,
/// 0 -> {1,2,3}, 1 -> {4,5}, 2 -> {6}, 3 -> {7} — with the paper's
/// uneven size mix (F1 largest, F7 smallest), scaled to `total_bytes`.
inline Deployment MakeBushy(uint64_t total_bytes, uint64_t seed) {
  const std::vector<std::vector<int>> topology = {{1, 2, 3}, {4, 5}, {6},
                                                  {7},       {},     {},
                                                  {},        {}};
  // Weights echoing Experiment 3's mix (F0 ~ fixed, F1 dominant).
  const double weights[] = {0.12, 0.35, 0.14, 0.12, 0.09, 0.08, 0.06, 0.04};
  std::vector<uint64_t> sizes;
  for (double w : weights) {
    sizes.push_back(static_cast<uint64_t>(w * total_bytes));
  }
  xml::Document doc = xmark::GenerateTreeDocument(topology, sizes, seed);
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  Check(set.status());
  Check(frag::SplitAtAllLabeled(&*set, "site").status());
  auto st =
      frag::SourceTree::Create(*set, frag::AssignOneSitePerFragment(*set));
  Check(st.status());
  return Deployment{std::move(*set), std::move(*st)};
}

/// Query with the given |QList| over XMark labels (Experiments 1, 3).
inline xpath::NormQuery QueryOfSize(int qlist_size) {
  auto q = xmark::MakeQueryOfQListSize(qlist_size);
  Check(q.status());
  return std::move(*q);
}

// ---- Session plumbing: the benches evaluate through the
// compile-once/execute-many API (core/session.h). ----

/// Open a session over a deployment (borrows; `d` must outlive it).
inline core::Session OpenSession(const Deployment& d) {
  auto session = core::Session::Create(&d.set, &d.st);
  Check(session.status());
  return std::move(*session);
}

/// Open a writable session (accepts Session::Apply deltas; `*d` must
/// outlive it).
inline core::Session OpenMutableSession(Deployment* d) {
  auto session = core::Session::Create(&d->set, &d->st);
  Check(session.status());
  return std::move(*session);
}

/// Prepare a bench-owned query (`*q` must outlive the handle).
inline core::PreparedQuery PrepareQuery(core::Session* session,
                                        const xpath::NormQuery* q) {
  auto prepared = session->Prepare(q);
  Check(prepared.status());
  return std::move(*prepared);
}

/// Prepare, taking ownership of the compiled query.
inline core::PreparedQuery PrepareQuery(core::Session* session,
                                        xpath::NormQuery q) {
  auto prepared = session->Prepare(std::move(q));
  Check(prepared.status());
  return std::move(*prepared);
}

/// Execute with the named registered evaluator, asserting success.
inline core::RunReport Exec(core::Session* session,
                            const core::PreparedQuery& q,
                            const char* evaluator = "parbox") {
  auto report = session->Execute(q, {.evaluator = evaluator});
  Check(report.status());
  return std::move(*report);
}

// ---- Machine-readable bench output -------------------------------------

/// Collects a flat set of key -> number metrics (backed by gauges of
/// an obs::MetricsRegistry, so bench figures flow through the same
/// metrics layer the serving stack reports into) and, when
/// $PARBOX_BENCH_JSON_DIR is set, writes them to
/// <dir>/<bench name>.json on destruction (CI uploads the directory as
/// a workflow artifact, so the perf trajectory is inspectable per
/// run — bench/trajectory/ holds committed baselines for
/// tools/bench_diff). Keys are emitted sorted by name; writing is a
/// no-op when the variable is unset.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void Add(const char* key, double value) {
    registry_.SetGauge(key, value);
  }

  ~JsonReport() {
    const char* dir = std::getenv("PARBOX_BENCH_JSON_DIR");
    if (dir == nullptr || dir[0] == '\0') return;
    const std::string path = std::string(dir) + "/" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\"", name_.c_str());
    for (const auto& [key, value] : registry_.Snapshot().gauges) {
      std::fprintf(out, ",\n  \"%s\": %.17g", key.c_str(), value);
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
  }

 private:
  std::string name_;
  obs::MetricsRegistry registry_;
};

inline void PrintHeader(const char* figure, const char* caption,
                        const BenchConfig& config) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("corpus %.1f MB (PARBOX_BENCH_BYTES), seed %llu\n",
              config.total_bytes / (1024.0 * 1024.0),
              static_cast<unsigned long long>(config.seed));
  std::printf("==========================================================\n");
}

}  // namespace parbox::bench

#endif  // PARBOX_BENCH_BENCH_COMMON_H_
