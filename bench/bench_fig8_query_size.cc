// Figure 8: ParBoX scalability in query size — the Fig. 7 sweep
// repeated for |QList(q)| in {2, 8, 15, 23}.
//
// Expected shape (paper): evaluation time increases linearly with the
// query size, and the parallelism benefits are consistent across all
// four query sizes.

#include "bench_common.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 8", "ParBoX runtime vs machines, per query size",
              config);

  std::printf("%-10s", "machines");
  for (int size : xmark::kPaperQuerySizes) {
    std::printf(" |QList|=%-6d", size);
  }
  std::printf("\n");
  for (int machines = 1; machines <= 10; ++machines) {
    Deployment d = MakeStar(machines, config.total_bytes, config.seed);
    core::Session session = OpenSession(d);
    std::printf("%-10d", machines);
    for (int size : xmark::kPaperQuerySizes) {
      core::PreparedQuery prepared =
          PrepareQuery(&session, QueryOfSize(size));
      core::RunReport report = Exec(&session, prepared);
      std::printf(" %-14.4f", report.makespan_seconds);
    }
    std::printf("\n");
  }
  std::printf("\nshape check: each column drops with machines; at fixed "
              "machines runtime grows ~linearly in |QList|.\n");
  return 0;
}
