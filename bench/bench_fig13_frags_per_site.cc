// Figure 13 (Experiment 4): vary the number of fragments assigned to a
// *single* site, keeping the cumulative data constant. ParBoX's
// evaluation time must depend on the cumulative size, not the fragment
// count — the curve is flat.

#include "bench_common.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 13",
              "one site, constant data, 1..10 fragments, |QList| = 8",
              config);

  xpath::NormQuery q = QueryOfSize(8);
  std::printf("%-12s %-14s %-10s %-12s\n", "fragments", "ParBoX (s)",
              "visits", "traffic");
  for (int fragments = 1; fragments <= 10; ++fragments) {
    // Everything on one machine (which is also its own coordinator).
    Deployment d =
        MakeStar(fragments, config.total_bytes, config.seed,
                 /*one_site=*/true);
    core::Session session = OpenSession(d);
    core::PreparedQuery prepared = PrepareQuery(&session, &q);
    core::RunReport report = Exec(&session, prepared);
    std::printf("%-12d %-14.4f %-10llu %-12llu\n", fragments,
                report.makespan_seconds,
                static_cast<unsigned long long>(report.total_visits()),
                static_cast<unsigned long long>(report.network_bytes));
  }
  std::printf("\nshape check: runtime ~constant across fragment counts "
              "(one visit, zero network traffic — all local).\n");
  return 0;
}
