// X12 (scale + chaos bench): QueryService over a million-node,
// 10'000-fragment XMark star on the proc:2 site daemons, serving a
// closed loop of cache-off marker queries while the environment
// misbehaves — injected network faults (drops, delays, duplicates via
// PARBOX_NET_FAULTS) plus one daemon SIGKILL mid-stream. The quiet
// sim run of the identical query sequence is the oracle: the bench
// FAILS unless every answer is bit-identical, the kill actually bumped
// a recovery epoch, and the fault injector actually fired.
//
// What the numbers mean: wall clock and p99 here price the paper's
// exactness guarantee under scale *and* chaos — partial evaluation
// answers only depend on the data, so the storm may cost time (retry
// backoff, re-shipping the dead daemon's fragments) but never
// correctness. Wall-clock ratios are recorded in the JSON for the
// trajectory diff, not gated — fault timing on shared runners is too
// noisy to threshold.
//
// Scale knobs: PARBOX_BENCH_SITES (default 10'050 sites of ~100 nodes
// each, the >=1M-node / >=10k-fragment chaos corpus) and the usual
// PARBOX_BENCH_SEED.

#include <sys/types.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "exec/process_backend.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "xml/dom.h"
#include "xpath/normalize.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  int num_sites = 10050;
  if (const char* sites = std::getenv("PARBOX_BENCH_SITES")) {
    num_sites = std::atoi(sites);
  }
  PrintHeader("X12", "scale + chaos: 1M-node corpus under a fault storm",
              config);

  xml::Document doc = xmark::GenerateScaledStarDocument(
      num_sites, /*nodes_per_site=*/100, config.seed);
  const size_t total_nodes = xml::CountNodes(doc.root());
  auto set = frag::FragmentSet::FromDocument(std::move(doc));
  Check(set.status());
  Check(frag::SplitAtAllLabeled(&*set, "site").status());
  auto st = frag::SourceTree::Create(*set, frag::AssignRoundRobin(*set, 16));
  Check(st.status());
  std::printf("%zu nodes, %zu fragments, %d logical sites\n\n", total_nodes,
              set->live_count(), st->num_sites());

  // Cache-off marker queries: every submission pays a full round over
  // every logical site, so the storm has a hot path to hit.
  const std::vector<std::string> pool = {
      "[//site[marker = \"m3\"]]",
      "[//site[marker = \"m" + std::to_string(num_sites - 1) + "\"]]",
      "[//person[creditcard]]",
      "[//open_auction[bidder]]",
      "[not(//site[marker = \"nope\"])]",
      "[//item[payment = \"Creditcard\"] and //category[name]]",
  };
  constexpr size_t kQueries = 48;
  constexpr int kConcurrency = 16;
  auto make_query = [&](size_t i) { return xpath::CompileQuery(pool[i % pool.size()]); };

  struct Served {
    double makespan = 0.0;
    double qps = 0.0;
    double p99_ms = 0.0;
    std::vector<char> answers;
    double retries = 0.0;
    double reconnects = 0.0;
    double faults = 0.0;
    uint64_t epoch_bumps = 0;
  };
  auto serve = [&](const std::string& backend, bool storm) -> Served {
    if (storm) {
      setenv("PARBOX_NET_FAULTS", std::to_string(config.seed).c_str(), 1);
    }
    service::ServiceOptions options;
    options.backend = backend;
    options.enable_cache = false;
    service::QueryService svc(&*set, &*st, options);
    if (storm) unsetenv("PARBOX_NET_FAULTS");

    // SIGKILL one daemon once the stream is in flight; detection,
    // respawn, and fragment re-shipping all happen under load.
    std::thread killer;
    auto* proc = dynamic_cast<exec::ProcessBackend*>(&svc.backend());
    if (storm && proc != nullptr) {
      const pid_t victim = proc->daemon_pid(0);
      killer = std::thread([victim] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        ::kill(victim, SIGKILL);
      });
    }
    auto report = service::RunClosedLoopWith(&svc, make_query, kQueries,
                                             kConcurrency,
                                             /*think_seconds=*/0.0);
    if (killer.joinable()) killer.join();
    Check(report.status());
    Check(svc.status());

    Served out;
    out.makespan = report->makespan_seconds;
    out.qps = report->throughput_qps;
    out.p99_ms = report->latency.Percentile(99) * 1e3;
    out.answers.resize(kQueries);
    for (const service::QueryOutcome& o : svc.outcomes()) {
      out.answers[o.query_id] = o.answer ? 1 : 0;
    }
    const service::ServiceReport built = svc.BuildReport();
    out.retries = static_cast<double>(built.stats.Get("proc.retries"));
    out.reconnects = static_cast<double>(built.stats.Get("proc.reconnects"));
    out.faults = static_cast<double>(built.stats.Get("proc.faults"));
    if (proc != nullptr) {
      for (frag::SiteId s = 0; s < st->num_sites(); ++s) {
        out.epoch_bumps += proc->RecoveryEpoch(s);
      }
    }
    return out;
  };

  const Served calm = serve("sim", /*storm=*/false);
  std::printf("sim (quiet oracle): %.4f s makespan\n\n", calm.makespan);

  const Served stormy = serve("proc:2", /*storm=*/true);
  std::printf("%-18s %-12s %-12s %-10s\n", "backend", "wall (s)", "qps",
              "p99 (ms)");
  std::printf("%-18s %-12.4f %-12.1f %-10.3f\n", "proc:2 + storm",
              stormy.makespan, stormy.qps, stormy.p99_ms);
  std::printf("\nstorm: %.0f faults injected, %.0f retries, %.0f "
              "reconnects, %llu recovery epoch bumps\n",
              stormy.faults, stormy.retries, stormy.reconnects,
              static_cast<unsigned long long>(stormy.epoch_bumps));

  JsonReport json("bench_x12_scale_chaos");
  json.Add("corpus_nodes", static_cast<double>(total_nodes));
  json.Add("corpus_fragments", static_cast<double>(set->live_count()));
  json.Add("sim_quiet_seconds", calm.makespan);
  json.Add("proc2_storm_wall_seconds", stormy.makespan);
  json.Add("proc2_storm_qps", stormy.qps);
  json.Add("proc2_storm_p99_ms", stormy.p99_ms);
  json.Add("storm_over_sim_wall_ratio",
           calm.makespan > 0.0 ? stormy.makespan / calm.makespan : 0.0);
  json.Add("storm_faults", stormy.faults);
  json.Add("storm_retries", stormy.retries);
  json.Add("storm_reconnects", stormy.reconnects);
  json.Add("storm_epoch_bumps", static_cast<double>(stormy.epoch_bumps));

  if (stormy.answers != calm.answers) {
    std::fprintf(stderr,
                 "FAIL: storm answers diverged from the quiet sim run\n");
    return 1;
  }
  if (total_nodes < 1000000u || set->live_count() < 10000u) {
    std::fprintf(stderr, "FAIL: corpus below the 1M-node / 10k-fragment "
                         "floor (%zu nodes, %zu fragments)\n",
                 total_nodes, set->live_count());
    return 1;
  }
  if (stormy.epoch_bumps < 1) {
    std::fprintf(stderr,
                 "FAIL: the SIGKILL never surfaced as a recovery epoch\n");
    return 1;
  }
  if (stormy.faults <= 0.0) {
    std::fprintf(stderr, "FAIL: the fault injector never fired\n");
    return 1;
  }
  std::printf("answers: all %zu bit-identical to the quiet sim oracle\n",
              kQueries);
  std::printf("PASS\n");
  return 0;
}
