// Shared driver for Figures 9-11: the FT2 version-chain experiment.
//
// In each iteration n (2..10 fragments; the paper's x-axis counts
// machines), a constant-size corpus is split into an n-deep chain,
// each fragment on its own machine, and a query satisfied at exactly
// one designated fragment is evaluated with ParBoX, FullDistParBoX and
// LazyParBoX.

#ifndef PARBOX_BENCH_BENCH_CHAIN_COMMON_H_
#define PARBOX_BENCH_BENCH_CHAIN_COMMON_H_

#include <functional>

#include "bench_common.h"

namespace parbox::bench {

/// `target(n)` names the chain position (0-based) whose marker the
/// query matches at iteration with n fragments.
inline int RunChainFigure(const char* figure, const char* caption,
                          const std::function<int(int)>& target) {
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader(figure, caption, config);

  // The paper plots elapsed time and *notes* that the eager
  // algorithms' total computation is much larger (they always touch
  // every fragment); the last two columns make that visible.
  std::printf("%-10s %-12s %-12s %-12s %-7s %-12s %-12s\n", "machines",
              "ParBoX(s)", "FDParBoX(s)", "LZParBoX(s)", "lz-vis",
              "eagerT(s)", "lazyT(s)");
  for (int n = 1; n <= 10; ++n) {
    Deployment d = MakeChain(n, config.total_bytes, config.seed);
    auto q = xmark::MakeMarkerQuery("v" + std::to_string(target(n)));
    Check(q.status());
    core::Session session = OpenSession(d);
    core::PreparedQuery prepared = PrepareQuery(&session, std::move(*q));
    core::RunReport parbox = Exec(&session, prepared, "parbox");
    core::RunReport fdist = Exec(&session, prepared, "fulldist");
    core::RunReport lazy = Exec(&session, prepared, "lazy");
    if (!parbox.answer || !fdist.answer || !lazy.answer) {
      std::fprintf(stderr, "query unexpectedly false at n=%d\n", n);
      return 1;
    }
    std::printf("%-10d %-12.4f %-12.4f %-12.4f %-7llu %-12.4f %-12.4f\n",
                n, parbox.makespan_seconds, fdist.makespan_seconds,
                lazy.makespan_seconds,
                static_cast<unsigned long long>(lazy.total_visits()),
                parbox.total_compute_seconds,
                lazy.total_compute_seconds);
  }
  return 0;
}

}  // namespace parbox::bench

#endif  // PARBOX_BENCH_BENCH_CHAIN_COMMON_H_
