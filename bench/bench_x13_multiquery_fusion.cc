// Experiment X13: fused multi-query partial evaluation.
//
// K = 16 similar queries — one family: a 12-step descendant chain
// base plus 15 label-qualified variants — arrive as one burst over
// the X6 star corpus. Served two ways:
//
//   independent — batching, cache and fusion all off: every query is
//                 its own round, one bottom-up walk per
//                 (fragment x query), exactly the pre-fusion service.
//   fused       — one walk per fragment evaluates ALL K lanes at
//                 once (xpath/eval_batch.h): the shared 37-entry
//                 chain prefix is computed once per element and
//                 donor-copied into every lane, so per-element cost
//                 is |prefix| + K x |suffix| instead of K x |QList|.
//
// Gates: fused wall clock >= 2x independent (best of 3), fused
// kernel ops <= 1/(K/2) = 1/8 of independent, and answers
// bit-identical to standalone RunParBoX on sim AND identical across
// the threads and proc:2 backends.
//
// A second leg exercises result-cache subsumption: with a variant
// cached, its unqualified base — a QList *prefix* of the cached
// query — must answer by re-solving the truncated retained equation
// system with ZERO site visits and zero new network bytes.

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench_common.h"
#include "service/query_service.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Experiment X13",
              "fused multi-query partial evaluation, K=16 burst", config);

  constexpr int kQueries = 16;
  constexpr int kChainSteps = 12;

  Deployment d = MakeStar(8, config.total_bytes, config.seed);
  std::printf("%zu elements, %zu fragments, %d sites\n",
              d.set.TotalElements(), d.set.live_count(), d.st.num_sites());

  auto family_query = [&](int member) {
    auto q = xmark::MakeFamilyQuery(kChainSteps, member - 1);
    Check(q.status());
    return std::move(*q);
  };

  // ---- Standalone oracle answers ----
  core::Session session = OpenSession(d);
  std::vector<bool> expected;
  for (int m = 0; m < kQueries; ++m) {
    core::PreparedQuery prepared = PrepareQuery(&session, family_query(m));
    expected.push_back(Exec(&session, prepared).answer);
  }

  struct BurstResult {
    double wall_seconds = 0.0;  ///< best of 3
    service::ServiceReport report;
  };
  auto run_burst = [&](const std::string& backend,
                       bool fused) -> BurstResult {
    BurstResult best;
    best.wall_seconds = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      service::ServiceOptions options;
      options.backend = backend;
      options.enable_cache = false;
      options.enable_batching = fused;
      options.enable_fusion = fused;
      service::QueryService svc(&d.set, &d.st, options);
      const auto t0 = std::chrono::steady_clock::now();
      for (int m = 0; m < kQueries; ++m) {
        Check(svc.Submit(family_query(m), 0.0).status());
      }
      svc.Run();
      const auto t1 = std::chrono::steady_clock::now();
      Check(svc.status());
      for (const auto& outcome : svc.outcomes()) {
        if (outcome.answer != expected[outcome.query_id]) {
          std::fprintf(stderr,
                       "ANSWER MISMATCH: %s %s query %llu\n",
                       backend.c_str(), fused ? "fused" : "independent",
                       static_cast<unsigned long long>(outcome.query_id));
          std::exit(1);
        }
      }
      const double wall = std::chrono::duration<double>(t1 - t0).count();
      if (wall < best.wall_seconds) {
        best.wall_seconds = wall;
        best.report = svc.BuildReport();
      }
    }
    return best;
  };

  const BurstResult independent = run_burst("sim", /*fused=*/false);
  const BurstResult fused = run_burst("sim", /*fused=*/true);
  // The real backends must answer the same burst identically (the
  // differential suite holds the full slice; the bench re-checks the
  // answers at corpus scale).
  run_burst("threads", /*fused=*/true);
  run_burst("proc:2", /*fused=*/true);

  const double wall_speedup =
      independent.wall_seconds / fused.wall_seconds;
  const double ops_ratio =
      static_cast<double>(independent.report.total_ops) /
      static_cast<double>(fused.report.total_ops);
  std::printf("\n%-14s %-12s %-14s %-12s %-10s\n", "mode", "wall (s)",
              "kernel ops", "fused walks", "shared");
  std::printf("%-14s %-12.4f %-14llu %-12llu %-10s\n", "independent",
              independent.wall_seconds,
              static_cast<unsigned long long>(independent.report.total_ops),
              static_cast<unsigned long long>(
                  independent.report.fused_walks),
              "-");
  std::printf("%-14s %-12.4f %-14llu %-12llu %-10llu\n", "fused",
              fused.wall_seconds,
              static_cast<unsigned long long>(fused.report.total_ops),
              static_cast<unsigned long long>(fused.report.fused_walks),
              static_cast<unsigned long long>(
                  fused.report.cse_shared_exprs));
  std::printf("\nwall speedup %.1fx (target >= 2x), eval-op ratio %.1fx "
              "(target >= %dx)\n",
              wall_speedup, ops_ratio, kQueries / 2);

  // ---- Subsumption leg: base answered from a cached variant ----
  service::QueryService svc(&d.set, &d.st);
  Check(svc.Submit(family_query(1), 0.0).status());  // variant, cached
  svc.Run();
  Check(svc.status());
  const uint64_t bytes_before = svc.backend().traffic().total_bytes();
  const std::vector<uint64_t> visits_before = svc.backend().visits();
  Check(svc.Submit(family_query(0), svc.now()).status());  // base
  svc.Run();
  Check(svc.status());
  const service::ServiceReport sub_report = svc.BuildReport();
  const bool sub_zero_cost =
      svc.backend().visits() == visits_before &&
      svc.backend().traffic().total_bytes() == bytes_before;
  const bool sub_correct =
      svc.outcomes().size() == 2 && svc.outcomes()[1].subsumption_hit &&
      svc.outcomes()[1].answer == expected[0];
  std::printf("subsumption: %llu hit(s), zero-cost %s, answer %s\n",
              static_cast<unsigned long long>(sub_report.subsumption_hits),
              sub_zero_cost ? "yes" : "NO",
              sub_correct ? "correct" : "WRONG");

  JsonReport json("bench_x13_multiquery_fusion");
  json.Add("independent_wall_seconds", independent.wall_seconds);
  json.Add("fused_wall_seconds", fused.wall_seconds);
  json.Add("wall_speedup", wall_speedup);
  json.Add("independent_ops",
           static_cast<double>(independent.report.total_ops));
  json.Add("fused_ops", static_cast<double>(fused.report.total_ops));
  json.Add("ops_ratio", ops_ratio);
  json.Add("fused_walks",
           static_cast<double>(fused.report.fused_walks));
  json.Add("cse_shared_exprs",
           static_cast<double>(fused.report.cse_shared_exprs));
  json.Add("subsumption_hits",
           static_cast<double>(sub_report.subsumption_hits));

  if (wall_speedup < 2.0) {
    std::fprintf(stderr, "FAILED: fused wall speedup %.2fx < 2x\n",
                 wall_speedup);
    return 1;
  }
  if (ops_ratio < kQueries / 2) {
    std::fprintf(stderr, "FAILED: eval-op ratio %.2fx < %dx\n", ops_ratio,
                 kQueries / 2);
    return 1;
  }
  if (sub_report.subsumption_hits != 1 || !sub_zero_cost || !sub_correct) {
    std::fprintf(stderr, "FAILED: subsumption leg\n");
    return 1;
  }
  std::printf("answers: all %d bit-identical to standalone RunParBoX on "
              "sim, threads, proc:2\n",
              kQueries);
  return 0;
}
