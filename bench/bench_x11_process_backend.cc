// X11 (acceptance bench): QueryService on the multi-process site
// daemons ("proc:4") vs the in-process thread pool ("threads:4") vs
// the simulated baseline, on X6's workload: 256 zipf-skewed queries
// (16 distinct) over a star deployment, 64 in-flight, cache off so
// every query does real site work over real sockets.
//
// The point being measured is the transport tax: identical logical
// work (bit-identical answers, visits, and metered traffic — the
// backend-differential suite holds that elsewhere), with every
// cross-site parcel paying a length-prefixed frame over a Unix-domain
// socket plus the coordinator's poll loop. The bench reports wall
// clock and the proc transport counters (frames, retries, reconnects)
// and gates only on correctness plus a clean run (no retries or
// reconnects on a quiet localhost); wall-clock ratios are recorded in
// the JSON for the trajectory diff, not gated — socket scheduling on
// shared runners is too noisy.

#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/query_service.h"
#include "service/workload.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("X11", "process backend: QueryService on proc:4 daemons",
              config);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host has %u hardware threads\n\n", hw);

  Deployment d = MakeStar(8, config.total_bytes, config.seed);
  std::printf("%zu elements, %zu fragments, %d sites\n\n",
              d.set.TotalElements(), d.set.live_count(), d.st.num_sites());
  auto workload = service::Workload::Make(service::WorkloadSpec{
      .distinct_queries = 16, .min_qlist_size = 2, .zipf_s = 1.0});
  Check(workload.status());

  service::ClosedLoopOptions loop;
  loop.num_queries = 256;
  loop.concurrency = 64;
  loop.seed = config.seed;

  struct Served {
    double makespan = 0.0;
    double qps = 0.0;
    double p99_ms = 0.0;
    std::vector<char> answers;
    double frames = 0.0;
    double retries = 0.0;
    double reconnects = 0.0;
  };
  auto serve = [&](const std::string& backend) -> Served {
    service::ServiceOptions options;
    options.backend = backend;
    options.enable_cache = false;  // every query does real site work
    service::QueryService svc(&d.set, &d.st, options);
    auto report = service::RunClosedLoop(&svc, *workload, loop);
    Check(report.status());
    Check(svc.status());
    Served out;
    out.makespan = report->makespan_seconds;
    out.qps = report->throughput_qps;
    out.p99_ms = report->latency.Percentile(99) * 1e3;
    // Answers keyed by submission id (completion order may differ).
    out.answers.resize(loop.num_queries);
    for (const service::QueryOutcome& o : svc.outcomes()) {
      out.answers[o.query_id] = o.answer ? 1 : 0;
    }
    const service::ServiceReport built = svc.BuildReport();
    out.frames = static_cast<double>(built.stats.Get("proc.frames"));
    out.retries = static_cast<double>(built.stats.Get("proc.retries"));
    out.reconnects =
        static_cast<double>(built.stats.Get("proc.reconnects"));
    return out;
  };

  const Served sim = serve("sim");
  std::printf("sim (virtual)   : %.4f s makespan\n\n", sim.makespan);

  std::printf("%-12s %-14s %-12s %-10s %-10s\n", "backend", "wall (s)",
              "qps", "p99 (ms)", "frames");
  Served threads, proc;
  for (const char* backend : {"threads:4", "proc:4"}) {
    Served best;
    for (int rep = 0; rep < 3; ++rep) {
      Served run = serve(backend);
      if (run.answers != sim.answers) {
        std::fprintf(stderr, "FAIL: %s answers diverged from sim\n",
                     backend);
        return 1;
      }
      if (rep == 0 || run.makespan < best.makespan) best = std::move(run);
    }
    std::printf("%-12s %-14.4f %-12.1f %-10.3f %-10.0f\n", backend,
                best.makespan, best.qps, best.p99_ms, best.frames);
    (std::string(backend) == "proc:4" ? proc : threads) = std::move(best);
  }

  const double tax =
      threads.makespan > 0.0 ? proc.makespan / threads.makespan : 0.0;
  std::printf("\nproc:4 transport tax over threads:4: %.2fx wall clock "
              "(%.0f frames, %.0f retries, %.0f reconnects)\n",
              tax, proc.frames, proc.retries, proc.reconnects);

  JsonReport json("bench_x11_process_backend");
  json.Add("sim_virtual_seconds", sim.makespan);
  json.Add("threads4_wall_seconds", threads.makespan);
  json.Add("proc4_wall_seconds", proc.makespan);
  json.Add("threads4_qps", threads.qps);
  json.Add("proc4_qps", proc.qps);
  json.Add("threads4_p99_ms", threads.p99_ms);
  json.Add("proc4_p99_ms", proc.p99_ms);
  json.Add("proc_over_threads_wall_ratio", tax);
  json.Add("proc_frames", proc.frames);
  json.Add("proc_retries", proc.retries);
  json.Add("proc_reconnects", proc.reconnects);
  json.Add("hardware_threads", hw);

  if (proc.frames <= 0.0) {
    std::fprintf(stderr,
                 "FAIL: proc:4 reported no frames — the workload never "
                 "touched the sockets\n");
    return 1;
  }
  // A quiet localhost run must need no reliability machinery: retries
  // or reconnects here mean lost frames or a crashed daemon.
  if (proc.retries > 0.0 || proc.reconnects > 0.0) {
    std::fprintf(stderr,
                 "FAIL: clean run used %.0f retries / %.0f reconnects\n",
                 proc.retries, proc.reconnects);
    return 1;
  }
  std::printf("answers: all %zu bit-identical to sim on both backends\n",
              static_cast<size_t>(loop.num_queries));
  std::printf("PASS\n");
  return 0;
}
