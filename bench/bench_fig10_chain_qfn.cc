// Figure 10: query q_Fn — satisfied at the deepest fragment.
//
// Expected shape (paper): ParBoX and FullDistParBoX stay flat (parallel
// evaluation), while LazyParBoX's runtime grows with the chain depth —
// it steps through every level sequentially — with increments that
// shrink (50/(i*(i+1)) of the data between consecutive iterations).

#include "bench_chain_common.h"

int main() {
  return parbox::bench::RunChainFigure(
      "Figure 10", "chain FT2, query satisfied at F_n",
      [](int n) { return n - 1; });
}
