// Figure 7: ParBoX vs NaiveCentralized, constant corpus split across
// 1..10 machines (fragment tree FT1), |QList(q)| = 8.
//
// Expected shape (paper): ParBoX's runtime falls as machines are added
// (parallelism), flattening once fragments get small; NaiveCentralized
// pays data shipping on top of its (constant) evaluation time, so it
// sits far above ParBoX everywhere beyond one machine.

#include "bench_common.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Figure 7", "ParBoX vs NaiveCentralized, |QList| = 8",
              config);

  xpath::NormQuery q = QueryOfSize(8);
  std::printf("%-10s %-14s %-14s %-16s %-16s\n", "machines",
              "ParBoX (s)", "Central (s)", "ParBoX traffic",
              "Central traffic");
  for (int machines = 1; machines <= 10; ++machines) {
    Deployment d = MakeStar(machines, config.total_bytes, config.seed);
    core::Session session = OpenSession(d);
    core::PreparedQuery prepared = PrepareQuery(&session, &q);
    core::RunReport parbox = Exec(&session, prepared, "parbox");
    core::RunReport central = Exec(&session, prepared, "central");
    if (parbox.answer != central.answer) {
      std::fprintf(stderr, "ANSWER MISMATCH at %d machines\n", machines);
      return 1;
    }
    std::printf("%-10d %-14.4f %-14.4f %-16llu %-16llu\n", machines,
                parbox.makespan_seconds, central.makespan_seconds,
                static_cast<unsigned long long>(parbox.network_bytes),
                static_cast<unsigned long long>(central.network_bytes));
  }
  std::printf("\nshape check: ParBoX should drop then flatten; Central "
              "should stay dominated by data shipping.\n");
  return 0;
}
