// X5 (extension bench, Sec. 8): data-selection XPath — the two-pass
// up/down algorithm with the visit-at-most-twice guarantee.
//
// Sweeps fragment counts at constant corpus size and reports elapsed
// time, traffic split (triplets up vs contexts down vs result ids),
// and the measured visit bound. Selection time should track the
// Boolean ParBoX curve (the down pass re-traverses only fragments a
// match crosses).

#include "bench_common.h"

#include "core/path_selection.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("X5", "path selection: //item[payment = \"Creditcard\"]",
              config);

  std::printf("%-10s %-12s %-12s %-10s %-14s %-12s\n", "machines",
              "select (s)", "parbox (s)", "selected", "traffic(B)",
              "max-visits");
  for (int machines = 2; machines <= 10; machines += 2) {
    Deployment d = MakeStar(machines, config.total_bytes, config.seed);
    auto selection =
        xpath::CompileSelection("//item[payment = \"Creditcard\"]");
    Check(selection.status());
    auto result = core::RunPathSelection(d.set, d.st, *selection);
    Check(result.status());
    // Boolean baseline over the same compiled query.
    core::Session session = OpenSession(d);
    core::PreparedQuery prepared =
        PrepareQuery(&session, &selection->query);
    core::RunReport boolean = Exec(&session, prepared);
    std::printf("%-10d %-12.4f %-12.4f %-10zu %-14llu %-12llu\n",
                machines, result->report.makespan_seconds,
                boolean.makespan_seconds, result->total_selected,
                static_cast<unsigned long long>(
                    result->report.network_bytes),
                static_cast<unsigned long long>(
                    result->report.max_visits_per_site()));
  }
  std::printf("\nshape check: selection stays within ~2x of Boolean "
              "ParBoX; max-visits never exceeds 2.\n");
  return 0;
}
