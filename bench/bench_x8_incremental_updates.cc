// Experiment X8: incremental update pipeline — the acceptance bench
// for Session::Apply / ExecuteIncremental (fragment/delta.h).
//
// The live-update serving pattern: a long-lived deployment absorbs a
// stream of small content deltas, and the same prepared query must be
// re-answered after each. Two ways to pay for it, measured in host
// wall-clock time per re-answer:
//
//   full re-run   — Session::Execute (ParBoX): every fragment is
//                   re-partially-evaluated from scratch, every site
//                   visited, the whole system re-solved.
//   incremental   — Session::ExecuteIncremental: only the fragments
//                   dirtied since the last run are re-evaluated (one
//                   "update" message to each dirty site), every clean
//                   fragment's retained triplet is reused verbatim,
//                   and the coordinator re-solves.
//
// Each iteration dirties 2 of the deployment's fragments (<10% of
// card(F)); answers are asserted identical between the two paths on
// every iteration. Gate: incremental re-execution must be >= 3x
// faster on mean wall time, or the process exits 1.

#include <algorithm>
#include <chrono>
#include <string>

#include "bench_common.h"
#include "common/stats.h"
#include "fragment/delta.h"

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("Experiment X8",
              "incremental delta re-execution vs full re-run "
              "(host wall time)",
              config);

  // Pinned corpus (like X7): the gate contrasts per-update work that
  // scales with |T| (full re-run) against work that scales with the
  // dirty fragments only (incremental). 1 MiB over 32 fragments keeps
  // a full pass measurable without making the suite crawl; the dirty
  // fraction, not the corpus, is the experiment's variable.
  const uint64_t corpus_bytes = std::min<uint64_t>(
      config.total_bytes, 1u << 20);
  Deployment d = MakeStar(32, corpus_bytes, config.seed);
  const std::string query_text =
      "[//item[payment = \"Creditcard\" and shipping] and "
      "//person[creditcard and profile/interest] and "
      "not(//category[name = \"none\"])]";
  const int kWarmup = 8;
  const int kIters = 48;
  const size_t kDirtyPerIter = 2;

  std::printf("%zu elements, %zu fragments, %d sites\nquery: %s\n",
              d.set.TotalElements(), d.set.live_count(), d.st.num_sites(),
              query_text.c_str());
  const double dirty_fraction =
      static_cast<double>(kDirtyPerIter) /
      static_cast<double>(d.set.live_count());
  std::printf("dirty per iteration: %zu/%zu fragments (%.1f%%)\n",
              kDirtyPerIter, d.set.live_count(), 100.0 * dirty_fraction);
  if (dirty_fraction >= 0.10) {
    std::fprintf(stderr, "FAILED: dirty fraction must stay below 10%%\n");
    return 1;
  }

  core::Session session = OpenMutableSession(&d);
  core::PreparedQuery prepared = [&] {
    auto p = session.Prepare(query_text);
    Check(p.status());
    return std::move(*p);
  }();

  // Seed the incremental state (full pass, retained triplets).
  {
    auto seeded = session.ExecuteIncremental(prepared);
    Check(seeded.status());
  }

  // Non-root fragments to dirty, round-robin.
  std::vector<frag::FragmentId> targets;
  for (frag::FragmentId f : d.set.live_ids()) {
    if (f != d.set.root_fragment()) targets.push_back(f);
  }

  Distribution full_wall, inc_wall;
  uint64_t inc_visits_max = 0;
  size_t next_target = 0;
  for (int i = -kWarmup; i < kIters; ++i) {
    // Dirty kDirtyPerIter fragments with small content deltas.
    for (size_t u = 0; u < kDirtyPerIter; ++u) {
      const frag::FragmentId f = targets[next_target];
      next_target = (next_target + 1) % targets.size();
      auto applied = session.Apply(frag::Delta::InsertSubtree(
          f, d.set.fragment(f).root, "x8upd", "tick"));
      Check(applied.status());
    }

    // Full re-run: every fragment, every site, from scratch.
    const double full_start = NowSeconds();
    core::RunReport full = Exec(&session, prepared);
    const double full_elapsed = NowSeconds() - full_start;

    // Incremental: only the two dirty fragments.
    const double inc_start = NowSeconds();
    auto inc = session.ExecuteIncremental(prepared);
    Check(inc.status());
    const double inc_elapsed = NowSeconds() - inc_start;

    if (inc->answer != full.answer) {
      std::fprintf(stderr, "RESULT DRIFT: incremental answer differs "
                           "from the full re-run (iteration %d)\n", i);
      return 1;
    }
    if (i >= 0) {
      full_wall.Add(full_elapsed);
      inc_wall.Add(inc_elapsed);
      inc_visits_max = std::max(inc_visits_max, inc->total_visits());
    }
  }

  std::printf("\n%-14s %s\n", "full re-run",
              full_wall.Summary("us", 1e6).c_str());
  std::printf("%-14s %s\n", "incremental",
              inc_wall.Summary("us", 1e6).c_str());
  std::printf("incremental site visits per update: max %llu "
              "(dirty sites only; full re-run visits all %zu)\n",
              static_cast<unsigned long long>(inc_visits_max),
              session.plan()->site_fragments.size());

  if (inc_visits_max > kDirtyPerIter) {
    std::fprintf(stderr,
                 "FAILED: incremental run visited more sites than it "
                 "had dirty fragments\n");
    return 1;
  }

  const double speedup_mean = full_wall.mean() / inc_wall.mean();
  const double speedup_p50 =
      full_wall.Percentile(50) / inc_wall.Percentile(50);
  std::printf("\nspeedup: mean %.2fx, p50 %.2fx (target >= 3x mean at "
              "<10%% dirty)\n",
              speedup_mean, speedup_p50);
  JsonReport json("bench_x8_incremental_updates");
  json.Add("full_rerun_mean_seconds", full_wall.mean());
  json.Add("incremental_mean_seconds", inc_wall.mean());
  json.Add("speedup_mean", speedup_mean);
  json.Add("speedup_p50", speedup_p50);
  if (speedup_mean < 3.0) {
    std::fprintf(stderr,
                 "FAILED: incremental re-execution below 3x full re-run\n");
    return 1;
  }
  std::printf("answers: all %d iterations bit-identical to the full "
              "re-run\n", kIters);
  return 0;
}
