// X14 (acceptance bench): fair-share multi-tenant scheduling —
// tail-latency isolation under zipf skew.
//
// Four documents share one threads:8 catalog host; document d0 is hot
// (10x every cold document's arrival rate — one aggregate Poisson
// stream split 10:1:1:1), d1..d3 are cold. The same pre-drawn
// cross-document plan is replayed three ways:
//
//   * isolated — each cold document alone on a dedicated threads:8
//     service, replaying exactly its slice of the plan: the
//     no-interference baseline for cold p99.
//   * fifo     — the shared catalog with the scheduler off (every
//     round dispatches the moment its batch closes): the hot
//     document's round storm and the cold rounds fight for the same
//     workers unarbitrated.
//   * fair     — the shared catalog admitting rounds through the DWRR
//     fair-share scheduler (equal weights, max_in_flight=4).
//
// Gates (hosts with >= 4 hardware threads; else SKIPPED):
//   * isolation  — fair-share pooled cold p99 < 2x the isolated
//     baseline's, despite the hot tenant's 10x load;
//   * no-regress — fair-share aggregate throughput >= 0.9x FIFO's.
//
// Answers are exactness-checked everywhere: scheduler on/off must be
// bit-identical per document on sim, threads:8, and proc:2 (the
// scheduler may reorder round dispatches, never change results).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "catalog/catalog.h"
#include "fragment/placement.h"
#include "obs/metrics.h"
#include "service/catalog_service.h"
#include "service/query_service.h"
#include "service/scheduler.h"
#include "service/workload.h"

int main() {
  using namespace parbox;
  using namespace parbox::bench;
  BenchConfig config = BenchConfig::FromEnv();
  PrintHeader("X14",
              "fair-share scheduler: cold-tenant p99 under a 10x hot tenant",
              config);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host has %u hardware threads\n\n", hw);

  constexpr int kDocs = 4;  // d0 hot, d1..d3 cold
  constexpr int kSitesPerDoc = 5;
  constexpr size_t kPlanQueries = 1040;
  constexpr double kRateQps = 2000.0;

  auto workload = service::Workload::Make({.distinct_queries = 16,
                                           .min_qlist_size = 3,
                                           .zipf_s = 0.0,
                                           .doc_zipf_s = 0.0,
                                           .hot_multiplier = 10.0});
  Check(workload.status());

  // ONE plan, drawn once: every leg (isolated, fifo, fair, oracle)
  // replays the identical submission stream.
  const service::CrossDocPlan plan = service::MakeCrossDocPlan(
      *workload, kDocs,
      {.num_queries = kPlanQueries,
       .arrival_rate_qps = kRateQps,
       .seed = config.seed});
  std::vector<size_t> per_doc_count(kDocs, 0);
  for (const auto& item : plan.items) ++per_doc_count[item.doc];
  std::printf("plan: %zu queries at %.0f q/s aggregate; per-doc counts:",
              plan.items.size(), kRateQps);
  for (int d = 0; d < kDocs; ++d) {
    std::printf(" d%d=%zu", d, per_doc_count[d]);
  }
  std::printf("\n\n");

  service::ServiceOptions base_options;
  base_options.enable_cache = false;  // every query does real site work

  auto make_doc = [&](int d) {
    return MakeStar(kSitesPerDoc, config.total_bytes / kDocs,
                    config.seed + static_cast<uint64_t>(d));
  };
  std::vector<std::string> doc_names;
  for (int d = 0; d < kDocs; ++d) {
    doc_names.push_back("d" + std::to_string(d));
  }

  struct SharedRun {
    std::vector<std::vector<char>> answers;  // per doc, by query id
    double cold_p99 = 0.0;
    double agg_qps = 0.0;
    uint64_t deferred = 0;
  };
  // Serve the full plan on one shared catalog host.
  auto serve_shared = [&](const std::string& backend, bool fair,
                          const service::CrossDocPlan& p) {
    catalog::CatalogOptions cat_options;
    cat_options.backend = backend;
    auto cat = catalog::Catalog::Create(cat_options);
    Check(cat.status());
    for (int d = 0; d < kDocs; ++d) {
      Deployment dep = make_doc(d);
      auto placement = frag::Placement::Create(
          dep.set, frag::AssignOneSitePerFragment(dep.set));
      Check(placement.status());
      Check((*cat)
                ->Open(doc_names[d], std::move(dep.set),
                       std::move(*placement))
                .status());
    }
    service::ServiceOptions options = base_options;
    options.enable_fair_share = fair;
    options.fair_share.max_in_flight = 4;
    auto svc = service::CatalogService::Create(cat->get(), options);
    Check(svc.status());
    if (fair) {
      // The hot tenant may hold at most 2 of the 4 slots: two slots
      // always stand ready for a cold arrival, and the worker-queue
      // backlog in front of any cold round stays bounded by two
      // rounds' site tasks. Work-conserving DWRR still lets the hot
      // document use both its slots flat-out while the colds idle.
      Check((*svc)->ConfigureTenant(
          doc_names[0],
          service::TenantConfig{.weight = 1.0, .max_in_flight = 2}));
    }
    auto report =
        service::RunCrossDocOpenLoop(svc->get(), *workload, doc_names, p);
    Check(report.status());
    SharedRun run;
    run.agg_qps = report->throughput_qps;
    run.deferred = report->sched_deferred;
    obs::Histogram cold;
    run.answers.assign(kDocs, {});
    for (int d = 0; d < kDocs; ++d) {
      const service::QueryService* qs =
          (*svc)->document_service(doc_names[d]);
      std::vector<std::pair<uint64_t, bool>> byid;
      for (const service::QueryOutcome& o : qs->outcomes()) {
        byid.emplace_back(o.query_id, o.answer);
      }
      std::sort(byid.begin(), byid.end());
      for (const auto& [id, answer] : byid) {
        run.answers[d].push_back(answer ? 1 : 0);
      }
      if (d > 0) cold.Merge(qs->BuildReport().latency);
    }
    run.cold_p99 = cold.Percentile(99);
    return run;
  };

  // Replay one cold document's slice of the plan on a dedicated host.
  auto isolated_cold_p99 = [&](const std::string& backend) {
    obs::Histogram cold;
    for (int d = 1; d < kDocs; ++d) {
      Deployment dep = make_doc(d);
      service::ServiceOptions options = base_options;
      options.backend = backend;
      auto svc = service::QueryService::Create(&dep.set, &dep.st, options);
      Check(svc.status());
      for (const auto& item : plan.items) {
        if (item.doc != static_cast<size_t>(d)) continue;
        auto q = workload->Materialize(item.query);
        Check(q.status());
        Check((*svc)->Submit(std::move(*q), item.arrival).status());
      }
      (*svc)->Run();
      Check((*svc)->status());
      cold.Merge((*svc)->BuildReport().latency);
    }
    return cold.Percentile(99);
  };

  // ---- Answer exactness: scheduler on/off across all backends ----
  const SharedRun sim_fair = serve_shared("sim", true, plan);
  const SharedRun sim_fifo = serve_shared("sim", false, plan);
  if (sim_fair.answers != sim_fifo.answers) {
    std::fprintf(stderr, "FAILED: ANSWER MISMATCH scheduler on/off (sim)\n");
    return 1;
  }
  if (sim_fair.deferred == 0) {
    std::fprintf(stderr,
                 "FAILED: fair-share run deferred no rounds — the "
                 "scheduler never engaged\n");
    return 1;
  }
  // proc:2 leg on a smaller plan (daemon round trips are expensive).
  const service::CrossDocPlan small_plan = service::MakeCrossDocPlan(
      *workload, kDocs,
      {.num_queries = 36, .arrival_rate_qps = 0.0, .seed = config.seed});
  const SharedRun proc_fair = serve_shared("proc:2", true, small_plan);
  const SharedRun proc_fifo = serve_shared("proc:2", false, small_plan);
  const SharedRun sim_small = serve_shared("sim", true, small_plan);
  if (proc_fair.answers != proc_fifo.answers ||
      proc_fair.answers != sim_small.answers) {
    std::fprintf(stderr, "FAILED: ANSWER MISMATCH scheduler on/off (proc:2)\n");
    return 1;
  }
  std::printf("answers: scheduler on/off bit-identical on sim and proc:2\n");

  // ---- Perf legs: best of 3 on threads:8 ----
  // Best (min / max) of each metric independently, the usual
  // noise-robust treatment: one slow rep of one leg (scheduler noise
  // on a shared CI host) must not sink a ratio built from another
  // leg's good rep.
  double fair_p99 = 1e30, fifo_p99 = 1e30, iso_p99 = 1e30;
  double fair_qps = 0.0, fifo_qps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double iso = isolated_cold_p99("threads:8");
    const SharedRun fifo = serve_shared("threads:8", false, plan);
    const SharedRun fair = serve_shared("threads:8", true, plan);
    if (fair.answers != sim_fair.answers ||
        fifo.answers != sim_fair.answers) {
      std::fprintf(stderr,
                   "FAILED: ANSWER MISMATCH scheduler on/off (threads:8)\n");
      return 1;
    }
    std::printf(
        "rep %d: cold p99 isolated %.3f ms, fifo %.3f ms, fair %.3f ms; "
        "qps fifo %.0f, fair %.0f\n",
        rep, iso * 1e3, fifo.cold_p99 * 1e3, fair.cold_p99 * 1e3,
        fifo.agg_qps, fair.agg_qps);
    iso_p99 = std::min(iso_p99, iso);
    fifo_p99 = std::min(fifo_p99, fifo.cold_p99);
    fair_p99 = std::min(fair_p99, fair.cold_p99);
    fifo_qps = std::max(fifo_qps, fifo.agg_qps);
    fair_qps = std::max(fair_qps, fair.agg_qps);
  }
  const double best_isolation_ratio = fair_p99 / iso_p99;
  const double best_qps_ratio = fair_qps / fifo_qps;

  std::printf("\n%-30s %-14s %-14s\n", "cold-tenant pooled p99",
              "latency (ms)", "vs isolated");
  std::printf("%-30s %-14.3f %-14s\n", "isolated baseline", iso_p99 * 1e3,
              "1.00x");
  std::printf("%-30s %-14.3f %-14.2fx\n", "shared, fifo", fifo_p99 * 1e3,
              fifo_p99 / iso_p99);
  std::printf("%-30s %-14.3f %-14.2fx\n", "shared, fair-share",
              fair_p99 * 1e3, best_isolation_ratio);
  std::printf("\naggregate throughput: fifo %.0f q/s, fair %.0f q/s "
              "(%.2fx; gate >= 0.9x)\n",
              fifo_qps, fair_qps, best_qps_ratio);

  JsonReport json("bench_x14_fair_share");
  json.Add("docs", kDocs);
  json.Add("plan_queries", static_cast<double>(plan.items.size()));
  json.Add("hot_multiplier", 10.0);
  json.Add("isolated_cold_p99_seconds", iso_p99);
  json.Add("fifo_cold_p99_seconds", fifo_p99);
  json.Add("fair_cold_p99_seconds", fair_p99);
  json.Add("isolation_ratio", best_isolation_ratio);
  json.Add("fifo_qps", fifo_qps);
  json.Add("fair_qps", fair_qps);
  json.Add("qps_ratio", best_qps_ratio);
  json.Add("hardware_threads", hw);

  if (hw < 4) {
    std::printf("SKIPPED: host has %u hardware threads; the isolation "
                "gate needs >= 4 to be meaningful. Answers verified "
                "bit-identical scheduler on/off on sim, threads, and "
                "proc:2.\n",
                hw);
    return 0;
  }
  if (best_isolation_ratio >= 2.0) {
    std::fprintf(stderr,
                 "FAILED: fair-share cold p99 is %.2fx the isolated "
                 "baseline (gate: < 2x)\n",
                 best_isolation_ratio);
    return 1;
  }
  if (best_qps_ratio < 0.9) {
    std::fprintf(stderr,
                 "FAILED: fair-share aggregate throughput is %.2fx "
                 "FIFO's (gate: >= 0.9x)\n",
                 best_qps_ratio);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
