// Figure 11: query q_F(n/2) — satisfied at the middle fragment.
//
// Expected shape (paper): LazyParBoX oscillates — when the middle
// fragment's depth is unchanged between consecutive iterations its
// time improves (less data per level), when the depth grows it steps
// up — converging to roughly 2-3x ParBoX; the eager algorithms stay
// flat and identical.

#include "bench_chain_common.h"

int main() {
  return parbox::bench::RunChainFigure(
      "Figure 11", "chain FT2, query satisfied at F_ceil(n/2)",
      [](int n) { return n / 2; });
}
